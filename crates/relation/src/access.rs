/// Compile-time choice between *instrumented* and *fast* kernels.
///
/// Every hot-path trie read in the join kernels is reported through a
/// `Tally`. The two implementations make instrumentation a zero-cost
/// dial:
///
/// * [`Counting`] (an alias for [`AccessCounter`]) records every touch —
///   use it when reproducing the paper's memory-access comparisons
///   (Figure 17) or feeding the baseline cost models, where the counts
///   *are* the result.
/// * [`NoTally`] is a zero-sized type whose `record` is an empty inline
///   function: the optimizer deletes every instrumentation call, so the
///   kernels run as fast as the hardware allows — use it for throughput
///   benchmarking and production-style serving, where only the join
///   results matter.
///
/// Both modes execute the *same* kernel code, so result sets are
/// identical by construction (and verified by property tests in
/// `triejax-join`).
///
/// # Example
///
/// ```
/// use triejax_relation::{AccessCounter, AccessKind, NoTally, Tally};
///
/// fn probe<T: Tally>(tally: &mut T) {
///     tally.record(AccessKind::IndexRead, 4);
/// }
///
/// let mut counting = AccessCounter::default();
/// probe(&mut counting);
/// assert_eq!(counting.index_reads, 1);
///
/// let mut fast = NoTally;
/// probe(&mut fast); // compiles to nothing
/// assert_eq!(fast.snapshot(), AccessCounter::default());
/// ```
pub trait Tally:
    Default + Copy + Clone + PartialEq + Eq + std::fmt::Debug + Send + 'static
{
    /// `true` when this tally actually counts (lets generic code skip
    /// work that only exists to be counted, e.g. byte-size bookkeeping).
    const ENABLED: bool;

    /// Records one touch of `bytes` bytes.
    fn record(&mut self, kind: AccessKind, bytes: u64);

    /// Adds another tally's totals into this one.
    fn merge(&mut self, other: &Self);

    /// Current totals as a plain [`AccessCounter`] (all-zero for
    /// [`NoTally`]).
    fn snapshot(&self) -> AccessCounter;
}

/// The instrumented [`Tally`]: today's `AccessCounter` behavior.
pub type Counting = AccessCounter;

/// The zero-cost [`Tally`]: every `record` call is an empty `#[inline]`
/// function the optimizer deletes. See [`Tally`] for when to use it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NoTally;

impl Tally for NoTally {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _kind: AccessKind, _bytes: u64) {}

    #[inline(always)]
    fn merge(&mut self, _other: &Self) {}

    fn snapshot(&self) -> AccessCounter {
        AccessCounter::default()
    }
}

impl Tally for AccessCounter {
    const ENABLED: bool = true;

    #[inline]
    fn record(&mut self, kind: AccessKind, bytes: u64) {
        AccessCounter::record(self, kind, bytes);
    }

    fn merge(&mut self, other: &Self) {
        AccessCounter::merge(self, other);
    }

    fn snapshot(&self) -> AccessCounter {
        *self
    }
}

/// The kind of memory touch performed by an instrumented operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Read of trie index data (value or child-range words).
    IndexRead,
    /// Write of a final join result tuple.
    ResultWrite,
    /// Read or write of engine-private intermediate state (e.g. the software
    /// PJR cache or a pairwise join's intermediate relation).
    Intermediate,
}

/// Counts every simulated memory word touched by a software join engine.
///
/// The paper's Figure 17 compares *main-memory accesses* across systems;
/// software engines thread an `AccessCounter` through every trie probe and
/// result emission so the harness can reproduce that figure. Counters are
/// plain data: cloning snapshots the current totals.
///
/// # Example
///
/// ```
/// use triejax_relation::{AccessCounter, AccessKind};
///
/// let mut c = AccessCounter::default();
/// c.record(AccessKind::IndexRead, 4);
/// c.record(AccessKind::ResultWrite, 12);
/// assert_eq!(c.index_reads, 1);
/// assert_eq!(c.total_bytes(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessCounter {
    /// Number of index-read touches.
    pub index_reads: u64,
    /// Bytes of index data read.
    pub index_bytes: u64,
    /// Number of result-write touches.
    pub result_writes: u64,
    /// Bytes of results written.
    pub result_bytes: u64,
    /// Number of intermediate-data touches.
    pub intermediate_accesses: u64,
    /// Bytes of intermediate data moved.
    pub intermediate_bytes: u64,
}

impl AccessCounter {
    /// Creates a zeroed counter; identical to `Default::default()`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one touch of `bytes` bytes.
    pub fn record(&mut self, kind: AccessKind, bytes: u64) {
        match kind {
            AccessKind::IndexRead => {
                self.index_reads += 1;
                self.index_bytes += bytes;
            }
            AccessKind::ResultWrite => {
                self.result_writes += 1;
                self.result_bytes += bytes;
            }
            AccessKind::Intermediate => {
                self.intermediate_accesses += 1;
                self.intermediate_bytes += bytes;
            }
        }
    }

    /// Total touches of any kind.
    pub fn total_accesses(&self) -> u64 {
        self.index_reads + self.result_writes + self.intermediate_accesses
    }

    /// Total bytes moved by touches of any kind.
    pub fn total_bytes(&self) -> u64 {
        self.index_bytes + self.result_bytes + self.intermediate_bytes
    }

    /// Adds another counter's totals into this one.
    pub fn merge(&mut self, other: &AccessCounter) {
        self.index_reads += other.index_reads;
        self.index_bytes += other.index_bytes;
        self.result_writes += other.result_writes;
        self.result_bytes += other.result_bytes;
        self.intermediate_accesses += other.intermediate_accesses;
        self.intermediate_bytes += other.intermediate_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_routes_by_kind() {
        let mut c = AccessCounter::new();
        c.record(AccessKind::IndexRead, 4);
        c.record(AccessKind::IndexRead, 4);
        c.record(AccessKind::ResultWrite, 16);
        c.record(AccessKind::Intermediate, 8);
        assert_eq!(c.index_reads, 2);
        assert_eq!(c.index_bytes, 8);
        assert_eq!(c.result_writes, 1);
        assert_eq!(c.result_bytes, 16);
        assert_eq!(c.intermediate_accesses, 1);
        assert_eq!(c.intermediate_bytes, 8);
        assert_eq!(c.total_accesses(), 4);
        assert_eq!(c.total_bytes(), 32);
    }

    #[test]
    fn tally_impls_agree_on_interface() {
        fn drive<T: Tally>(t: &mut T) {
            t.record(AccessKind::IndexRead, 4);
            t.record(AccessKind::ResultWrite, 8);
        }
        let mut counting = Counting::default();
        drive(&mut counting);
        const { assert!(Counting::ENABLED) };
        assert_eq!(counting.snapshot().total_bytes(), 12);

        let mut fast = NoTally;
        drive(&mut fast);
        const { assert!(!NoTally::ENABLED) };
        assert_eq!(fast.snapshot(), AccessCounter::default());

        let mut merged = NoTally;
        Tally::merge(&mut merged, &fast);
        assert_eq!(merged, NoTally);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = AccessCounter::new();
        a.record(AccessKind::IndexRead, 4);
        let mut b = AccessCounter::new();
        b.record(AccessKind::ResultWrite, 8);
        b.record(AccessKind::IndexRead, 4);
        a.merge(&b);
        assert_eq!(a.index_reads, 2);
        assert_eq!(a.result_writes, 1);
        assert_eq!(a.total_bytes(), 16);
    }
}
