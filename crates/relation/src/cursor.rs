use crate::{AccessKind, Tally, Trie, TrieLevel, Value, WORD_BYTES};

/// A LeapFrog-TrieJoin cursor over a [`Trie`] (Veldhuizen, ICDT'14).
///
/// The cursor is positioned on a node of one trie level (or "above the
/// root"). [`open`](Self::open) descends to the first child,
/// [`up`](Self::up) ascends, [`next`](Self::next) advances to the following
/// sibling, and [`seek`](Self::seek) performs the lowest-upper-bound search
/// that the paper's LUB hardware unit implements with binary search.
///
/// Every value or child-range word fetched from the trie is reported to the
/// caller's [`Tally`]. With [`crate::Counting`] (an [`crate::AccessCounter`])
/// that is how the software engines reproduce the paper's memory-access
/// comparison (Figure 17); with [`crate::NoTally`] the instrumentation
/// compiles away entirely and the cursor runs at full speed.
///
/// # Example
///
/// ```
/// use triejax_relation::{AccessCounter, Relation, Trie, TrieCursor};
///
/// let trie = Trie::build(&Relation::from_pairs(vec![(1, 2), (1, 5), (3, 4)]));
/// let mut cur = TrieCursor::new(&trie);
/// let mut c = AccessCounter::default();
/// cur.open(&mut c);
/// assert_eq!(cur.key(), 1);
/// assert!(cur.seek(2, &mut c)); // lowest upper bound of 2 is 3
/// assert_eq!(cur.key(), 3);
/// cur.open(&mut c);
/// assert_eq!(cur.key(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct TrieCursor<'a> {
    trie: &'a Trie,
    /// Per-depth level views, computed once at construction. The views are
    /// `Copy` borrows into the trie's flat word buffer; caching them keeps
    /// the per-probe hot path (`key`, `open`, `seek`) to a single indexed
    /// read instead of re-slicing the buffer on every call.
    levels: Vec<TrieLevel<'a>>,
    /// One frame per open level: sibling range `[lo, hi)` and position.
    frames: Vec<Frame>,
}

#[derive(Debug, Clone, Copy)]
struct Frame {
    lo: usize,
    hi: usize,
    pos: usize,
}

impl<'a> TrieCursor<'a> {
    /// Creates a cursor positioned above the root of `trie`.
    pub fn new(trie: &'a Trie) -> Self {
        TrieCursor {
            trie,
            levels: (0..trie.arity()).map(|i| trie.level(i)).collect(),
            frames: Vec::with_capacity(trie.arity()),
        }
    }

    /// The trie this cursor walks.
    pub fn trie(&self) -> &'a Trie {
        self.trie
    }

    /// Current depth: number of open levels (0 = above root).
    #[inline]
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// `true` once the cursor stepped past the last sibling of the current
    /// level.
    ///
    /// # Panics
    ///
    /// Panics if the cursor is above the root.
    #[inline]
    pub fn at_end(&self) -> bool {
        let f = self.frames.last().expect("cursor is above the root");
        f.pos >= f.hi
    }

    /// Value of the current node.
    ///
    /// # Panics
    ///
    /// Panics if the cursor is above the root or at the end of a level.
    #[inline]
    pub fn key(&self) -> Value {
        let f = self.frames.last().expect("cursor is above the root");
        assert!(f.pos < f.hi, "cursor is at end");
        self.levels[self.frames.len() - 1].values()[f.pos]
    }

    /// Index of the current node within its level's value array.
    ///
    /// The PJR cache stores these indexes alongside values so cached entries
    /// can be re-expanded by Midwife (paper §3.5).
    ///
    /// # Panics
    ///
    /// Panics if the cursor is above the root or at the end of a level.
    #[inline]
    pub fn pos(&self) -> usize {
        let f = self.frames.last().expect("cursor is above the root");
        assert!(f.pos < f.hi, "cursor is at end");
        f.pos
    }

    /// Sibling range `[lo, hi)` of the current level.
    ///
    /// # Panics
    ///
    /// Panics if the cursor is above the root.
    pub fn sibling_range(&self) -> (usize, usize) {
        let f = self.frames.last().expect("cursor is above the root");
        (f.lo, f.hi)
    }

    /// Descends to the first child of the current node (or to the first
    /// root-level node when above the root), reading the child-range words.
    ///
    /// Returns `false` if the child range is empty (only possible on an
    /// empty trie at the root).
    ///
    /// # Panics
    ///
    /// Panics when called on a leaf-level node or on an ended level.
    #[inline]
    pub fn open<T: Tally>(&mut self, counter: &mut T) -> bool {
        let (lo, hi) = if self.frames.is_empty() {
            (0, self.levels[0].len())
        } else {
            let depth = self.frames.len();
            assert!(depth < self.trie.arity(), "cannot open past the leaf level");
            let f = self.frames.last().expect("non-empty frames");
            assert!(f.pos < f.hi, "cannot open an ended level");
            // Midwife reads child_starts[pos] and child_starts[pos + 1].
            counter.record(AccessKind::IndexRead, 2 * WORD_BYTES);
            self.levels[depth - 1].child_range(f.pos)
        };
        if lo >= hi {
            return false;
        }
        // Fetch the first child's value.
        counter.record(AccessKind::IndexRead, WORD_BYTES);
        self.frames.push(Frame { lo, hi, pos: lo });
        true
    }

    /// Descends to the root level restricted to values in `[min, sup)`
    /// (`sup = None` means unbounded above), reading the bounding child
    /// range and locating the bounds by counted binary search.
    ///
    /// This is the shard-entry operation of the parallel engines: each
    /// root-range shard opens every participating trie's root level
    /// clamped to its slice of the first join variable's domain, so the
    /// subsequent leapfrog never probes outside the shard.
    ///
    /// Returns `false` (leaving the cursor above the root) when no root
    /// value falls inside the range.
    ///
    /// # Panics
    ///
    /// Panics if the cursor is not above the root.
    pub fn open_root_range<T: Tally>(
        &mut self,
        min: Value,
        sup: Option<Value>,
        counter: &mut T,
    ) -> bool {
        assert!(
            self.frames.is_empty(),
            "root range opens from above the root"
        );
        let values = self.levels[0].values();
        // An unbounded side needs no probing, so the first shard (min 0)
        // and the last (sup None) pay only for the bound they actually
        // have — and a fully unbounded "range" costs the same as `open`.
        let lo = if min == 0 {
            0
        } else {
            lower_bound(values, 0, values.len(), min, counter)
        };
        let hi = match sup {
            Some(s) => lower_bound(values, lo, values.len(), s, counter),
            None => values.len(),
        };
        if lo >= hi {
            return false;
        }
        // Fetch the first in-range value.
        counter.record(AccessKind::IndexRead, WORD_BYTES);
        self.frames.push(Frame { lo, hi, pos: lo });
        true
    }

    /// Descends one level restricted to values in `[min, sup)` (`sup =
    /// None` means unbounded above): the any-depth generalization of
    /// [`open_root_range`](Self::open_root_range). Above the root it *is*
    /// `open_root_range`; on an inner node it reads the child-range words
    /// like [`open`](Self::open) and then locates the bounds by counted
    /// binary search within the child range.
    ///
    /// This is the donee-entry operation of a sub-root dynamic split: the
    /// spawned task re-binds the donor's prefix and then opens the donated
    /// level clamped to the handed-off tail `[boundary, old_sup)`.
    ///
    /// Returns `false` (cursor depth unchanged) when no child value falls
    /// inside the range.
    ///
    /// # Panics
    ///
    /// Panics when called on a leaf-level node or on an ended level.
    pub fn open_range<T: Tally>(
        &mut self,
        min: Value,
        sup: Option<Value>,
        counter: &mut T,
    ) -> bool {
        if self.frames.is_empty() {
            return self.open_root_range(min, sup, counter);
        }
        let depth = self.frames.len();
        assert!(depth < self.trie.arity(), "cannot open past the leaf level");
        let f = self.frames.last().expect("non-empty frames");
        assert!(f.pos < f.hi, "cannot open an ended level");
        // Midwife reads child_starts[pos] and child_starts[pos + 1].
        counter.record(AccessKind::IndexRead, 2 * WORD_BYTES);
        let (lo, hi) = self.levels[depth - 1].child_range(f.pos);
        let values = self.levels[depth].values();
        let lo = if min == 0 {
            lo
        } else {
            lower_bound(values, lo, hi, min, counter)
        };
        let hi = match sup {
            Some(s) => lower_bound(values, lo, hi, s, counter),
            None => hi,
        };
        if lo >= hi {
            return false;
        }
        // Fetch the first in-range value.
        counter.record(AccessKind::IndexRead, WORD_BYTES);
        self.frames.push(Frame { lo, hi, pos: lo });
        true
    }

    /// Clones this cursor with the root level opened and restricted to
    /// values in `[min, sup)`, or `None` when the range holds no root
    /// value.
    ///
    /// Shard-handoff convenience over
    /// [`open_root_range`](Self::open_root_range) for callers that keep a
    /// prototype cursor per trie and want a positioned, range-clamped
    /// clone per shard (the in-tree engine drivers construct their own
    /// cursors and clamp them with `open_root_range` directly). The
    /// bounding binary searches are untallied — handoff is scheduling
    /// work, not simulated memory traffic; a shard's own accesses are
    /// counted when its driver opens the range.
    ///
    /// # Panics
    ///
    /// Panics if the cursor is not above the root.
    pub fn clone_at_root_range(&self, min: Value, sup: Option<Value>) -> Option<TrieCursor<'a>> {
        assert!(
            self.frames.is_empty(),
            "root range clones from above the root"
        );
        let mut clone = TrieCursor::new(self.trie);
        if clone.open_root_range(min, sup, &mut crate::NoTally) {
            Some(clone)
        } else {
            None
        }
    }

    /// Shrinks the deepest open level's sibling range to values `< sup`,
    /// locating the new bound by counted binary search (one probe per
    /// midpoint read, like [`seek`](Self::seek)).
    ///
    /// This is the parent side of a dynamic shard split: after handing
    /// the unvisited tail `[sup, old_sup)` of the level — the root for a
    /// classic range split, an inner level under a bound prefix for a
    /// sub-root split — to a freshly spawned task, a driver clamps every
    /// participating cursor so its own leapfrog never walks into the
    /// range it just gave away.
    ///
    /// # Panics
    ///
    /// Panics when the cursor is above the root, at the end of its level,
    /// or positioned at/beyond `sup`.
    pub fn clamp_sup<T: Tally>(&mut self, sup: Value, counter: &mut T) {
        let depth = self.frames.len();
        assert!(depth >= 1, "clamp applies to an open level");
        let values = self.levels[depth - 1].values();
        let f = self.frames.last_mut().expect("non-empty frames");
        assert!(f.pos < f.hi, "cursor is at end");
        assert!(
            values[f.pos] < sup,
            "split boundary must lie beyond the current key"
        );
        f.hi = lower_bound(values, f.pos, f.hi, sup, counter);
    }

    /// Lenient any-depth variant of [`clamp_sup`](Self::clamp_sup) for
    /// composite cursors whose constituent side may sit at the end of the
    /// level, or at/past the boundary, when the *merged* key is still
    /// below it. Such a side has nothing left below `sup`, so its frame is
    /// ended in place without probing.
    ///
    /// # Panics
    ///
    /// Panics when the cursor is above the root.
    pub(crate) fn clamp_sup_lenient<T: Tally>(&mut self, sup: Value, counter: &mut T) {
        let depth = self.frames.len();
        assert!(depth >= 1, "clamp applies to an open level");
        let values = self.levels[depth - 1].values();
        let f = self.frames.last_mut().expect("non-empty frames");
        if f.pos >= f.hi || values[f.pos] >= sup {
            f.hi = f.pos;
            return;
        }
        f.hi = lower_bound(values, f.pos, f.hi, sup, counter);
    }

    /// Number of sibling keys strictly after the current position on the
    /// deepest open level (0 when that level has ended). This is the
    /// donor-side size of a prospective dynamic split at the current
    /// depth.
    ///
    /// # Panics
    ///
    /// Panics when the cursor is above the root.
    pub fn unvisited(&self) -> usize {
        let f = self.frames.last().expect("cursor is above the root");
        if f.pos >= f.hi {
            0
        } else {
            f.hi - f.pos - 1
        }
    }

    /// The key at which this cursor would cut the unvisited tail of its
    /// deepest open level in half — the boundary a dynamic split donates.
    /// Requires `unvisited() >= 1`; the returned key is strictly greater
    /// than [`key`](Self::key).
    ///
    /// # Panics
    ///
    /// Panics when the cursor is above the root or the tail is empty.
    pub fn split_boundary(&self) -> Value {
        let depth = self.frames.len();
        assert!(depth >= 1, "cursor is above the root");
        let f = self.frames.last().expect("non-empty frames");
        let remaining = self.unvisited();
        assert!(remaining >= 1, "no unvisited tail to split");
        self.levels[depth - 1].values()[f.pos + 1 + remaining / 2]
    }

    /// Whether any sibling in `[boundary, hi)` remains on the deepest open
    /// level — the participant-validation probe of a sub-root dynamic
    /// split. The probe is a counted binary search, charged exactly like a
    /// root clamp search, so instrumented counts stay exact under deep
    /// splitting.
    ///
    /// # Panics
    ///
    /// Panics when the cursor is above the root.
    pub fn tail_contains<T: Tally>(&self, boundary: Value, counter: &mut T) -> bool {
        let depth = self.frames.len();
        assert!(depth >= 1, "cursor is above the root");
        let values = self.levels[depth - 1].values();
        let f = self.frames.last().expect("non-empty frames");
        lower_bound(values, f.pos, f.hi, boundary, counter) < f.hi
    }

    /// Ascends one level.
    ///
    /// # Panics
    ///
    /// Panics if the cursor is above the root.
    pub fn up(&mut self) {
        self.frames.pop().expect("cursor is above the root");
    }

    /// Advances to the next sibling. Returns `false` (and leaves the cursor
    /// `at_end`) when the level is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if the cursor is above the root or already at the end.
    #[inline]
    pub fn next<T: Tally>(&mut self, counter: &mut T) -> bool {
        let f = self.frames.last_mut().expect("cursor is above the root");
        assert!(f.pos < f.hi, "cursor is already at end");
        f.pos += 1;
        if f.pos < f.hi {
            counter.record(AccessKind::IndexRead, WORD_BYTES);
            true
        } else {
            false
        }
    }

    /// Descends one level directly to an absolute index, without touching
    /// memory.
    ///
    /// This is the cache-hit replay path of Cached TrieJoin: a PJR-cache
    /// entry stores `(value, index)` pairs, so the engine re-opens the level
    /// at the stored index without any child-range read or search. The
    /// pushed frame is a singleton range — during replay the engine never
    /// iterates siblings at the cached level.
    ///
    /// # Panics
    ///
    /// Panics when called on a leaf-level node or with `pos` outside the
    /// level.
    pub fn open_at(&mut self, pos: usize) {
        let depth = self.frames.len();
        assert!(depth < self.trie.arity(), "cannot open past the leaf level");
        assert!(
            pos < self.levels[depth].len(),
            "open_at index outside level"
        );
        self.frames.push(Frame {
            lo: pos,
            hi: pos + 1,
            pos,
        });
    }

    /// Repositions the cursor at an absolute index of the current level,
    /// without touching memory.
    ///
    /// Used when replaying positions stored in a partial-join-result cache:
    /// the cached entry already holds both the value and its index, so no
    /// probe is needed (paper §3.5).
    ///
    /// # Panics
    ///
    /// Panics if the cursor is above the root or `pos` lies outside the
    /// current sibling range.
    pub fn jump(&mut self, pos: usize) {
        let f = self.frames.last_mut().expect("cursor is above the root");
        assert!(
            pos >= f.lo && pos < f.hi,
            "jump target outside sibling range"
        );
        f.pos = pos;
    }

    /// Seeks the lowest upper bound of `v` among the remaining siblings.
    /// Returns `false` when every remaining sibling is smaller than `v`.
    ///
    /// Seeking is forward-only: positions before the current one are never
    /// revisited, as required by LeapFrog TrieJoin. Because successive seeks
    /// within a level are monotone, the target is usually *near* the current
    /// position, so the search gallops (exponential probe strides from
    /// `pos`) before binary-searching the bracketed gap — `O(log d)` probes
    /// for a target `d` ahead, instead of `O(log (hi - pos))` for a
    /// restart-from-`pos` binary search. Every probed word is tallied
    /// (one counted probe per value read), keeping Counting-mode figures
    /// honest.
    ///
    /// # Panics
    ///
    /// Panics if the cursor is above the root or already at the end.
    #[inline]
    pub fn seek<T: Tally>(&mut self, v: Value, counter: &mut T) -> bool {
        let depth = self.frames.len();
        let f = self.frames.last_mut().expect("cursor is above the root");
        assert!(f.pos < f.hi, "cursor is already at end");
        let values = self.levels[depth - 1].values();
        counter.record(AccessKind::IndexRead, WORD_BYTES);
        if values[f.pos] >= v {
            return true;
        }
        // Invariant: values[lo] < v. Gallop until a probe lands >= v (new
        // exclusive upper bracket) or the stride runs off the sibling range.
        let (mut lo, mut hi) = (f.pos, f.hi);
        let mut step = 1usize;
        while lo + step < f.hi {
            counter.record(AccessKind::IndexRead, WORD_BYTES);
            if values[lo + step] < v {
                lo += step;
                step <<= 1;
            } else {
                hi = lo + step;
                break;
            }
        }
        f.pos = lower_bound(values, lo + 1, hi, v, counter);
        f.pos < f.hi
    }
}

/// First index in `values[lo..hi]` whose value is `>= v` (counting one
/// probe per midpoint read, like [`TrieCursor::seek`]).
fn lower_bound<T: Tally>(
    values: &[Value],
    mut lo: usize,
    mut hi: usize,
    v: Value,
    counter: &mut T,
) -> usize {
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        counter.record(AccessKind::IndexRead, WORD_BYTES);
        if values[mid] < v {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AccessCounter, Relation};

    fn trie() -> Trie {
        // Level 0: [1, 3, 7]; children: 1 -> [2, 5], 3 -> [4], 7 -> [1, 9]
        Trie::build(&Relation::from_pairs(vec![
            (1, 2),
            (1, 5),
            (3, 4),
            (7, 1),
            (7, 9),
        ]))
    }

    #[test]
    fn galloping_seek_counts_every_probe() {
        // Single level holding 0..16 so probe sequences are hand-checkable.
        let rel =
            Relation::from_tuples(1, (0..16u32).map(|v| vec![v]).collect::<Vec<_>>()).unwrap();
        let t = Trie::build(&rel);
        let mut cur = TrieCursor::new(&t);
        let mut c = AccessCounter::default();
        assert!(cur.open(&mut c));
        // Seek to the current key: the initial probe answers it.
        let mut c = AccessCounter::default();
        assert!(cur.seek(0, &mut c));
        assert_eq!((cur.key(), c.index_reads), (0, 1));
        // Seek 5 from pos 0: initial probe at 0, gallop probes at 1, 3, 7,
        // binary probes at 5 and 4 — exactly 6 tallied reads.
        let mut c = AccessCounter::default();
        assert!(cur.seek(5, &mut c));
        assert_eq!((cur.key(), c.index_reads), (5, 6));
        // Adjacent seek: initial probe at 5, gallop probe at 6 brackets an
        // empty gap — exactly 2 tallied reads (a restart-from-pos binary
        // search would have paid ~log2(11)).
        let mut c = AccessCounter::default();
        assert!(cur.seek(6, &mut c));
        assert_eq!((cur.key(), c.index_reads), (6, 2));
        // Seek past the end: probes at 6, 7, 9, 13, then binary probe at 15
        // — exactly 5 tallied reads, and the cursor reports exhaustion.
        let mut c = AccessCounter::default();
        assert!(!cur.seek(99, &mut c));
        assert_eq!(c.index_reads, 5);
    }

    #[test]
    fn open_next_walks_root_level() {
        let t = trie();
        let mut cur = TrieCursor::new(&t);
        let mut c = AccessCounter::default();
        assert!(cur.open(&mut c));
        assert_eq!(cur.key(), 1);
        assert!(cur.next(&mut c));
        assert_eq!(cur.key(), 3);
        assert!(cur.next(&mut c));
        assert_eq!(cur.key(), 7);
        assert!(!cur.next(&mut c));
        assert!(cur.at_end());
    }

    #[test]
    fn open_descends_into_children() {
        let t = trie();
        let mut cur = TrieCursor::new(&t);
        let mut c = AccessCounter::default();
        cur.open(&mut c);
        cur.next(&mut c); // at 3
        assert!(cur.open(&mut c));
        assert_eq!(cur.depth(), 2);
        assert_eq!(cur.key(), 4);
        assert!(!cur.next(&mut c));
        cur.up();
        assert_eq!(cur.key(), 3);
    }

    #[test]
    fn seek_finds_lowest_upper_bound() {
        let t = trie();
        let mut cur = TrieCursor::new(&t);
        let mut c = AccessCounter::default();
        cur.open(&mut c);
        assert!(cur.seek(2, &mut c));
        assert_eq!(cur.key(), 3);
        assert!(cur.seek(3, &mut c), "seek to the current key stays put");
        assert_eq!(cur.key(), 3);
        assert!(!cur.seek(8, &mut c));
        assert!(cur.at_end());
    }

    #[test]
    fn seek_is_forward_only() {
        let t = trie();
        let mut cur = TrieCursor::new(&t);
        let mut c = AccessCounter::default();
        cur.open(&mut c);
        cur.seek(7, &mut c);
        assert_eq!(cur.key(), 7);
        // Seeking a smaller value must not move backwards.
        assert!(cur.seek(1, &mut c));
        assert_eq!(cur.key(), 7);
    }

    #[test]
    fn seek_within_child_range_is_bounded() {
        let t = trie();
        let mut cur = TrieCursor::new(&t);
        let mut c = AccessCounter::default();
        cur.open(&mut c);
        cur.seek(7, &mut c);
        cur.open(&mut c); // children of 7: [1, 9]
        assert!(cur.seek(2, &mut c));
        assert_eq!(cur.key(), 9);
        let (lo, hi) = cur.sibling_range();
        assert_eq!(hi - lo, 2);
    }

    #[test]
    fn accesses_are_counted() {
        let t = trie();
        let mut cur = TrieCursor::new(&t);
        let mut c = AccessCounter::default();
        cur.open(&mut c); // 1 value read
        assert_eq!(c.index_reads, 1);
        cur.open(&mut c); // 2 child-range words + 1 value read
        assert_eq!(c.index_reads, 3);
        assert_eq!(c.index_bytes, (1 + 2 + 1) * WORD_BYTES);
    }

    #[test]
    fn empty_trie_open_returns_false() {
        let t = Trie::build(&Relation::new(2).unwrap());
        let mut cur = TrieCursor::new(&t);
        let mut c = AccessCounter::default();
        assert!(!cur.open(&mut c));
        assert_eq!(cur.depth(), 0);
    }

    #[test]
    fn open_root_range_clamps_both_bounds() {
        // Root level: [1, 3, 7].
        let t = trie();
        let mut cur = TrieCursor::new(&t);
        let mut c = AccessCounter::default();
        assert!(cur.open_root_range(2, Some(7), &mut c));
        assert_eq!(cur.key(), 3);
        let (lo, hi) = cur.sibling_range();
        assert_eq!(hi - lo, 1, "only 3 lies in [2, 7)");
        assert!(!cur.next(&mut c));
        cur.up();
        // Unbounded above: [3, inf) holds 3 and 7.
        assert!(cur.open_root_range(3, None, &mut c));
        assert_eq!(cur.key(), 3);
        assert!(cur.next(&mut c));
        assert_eq!(cur.key(), 7);
        assert!(c.index_reads > 0, "range probes are counted");
    }

    #[test]
    fn open_root_range_rejects_empty_ranges() {
        let t = trie();
        let mut cur = TrieCursor::new(&t);
        let mut c = AccessCounter::default();
        assert!(!cur.open_root_range(4, Some(7), &mut c));
        assert_eq!(cur.depth(), 0, "cursor stays above the root");
        assert!(!cur.open_root_range(8, None, &mut c));
        assert!(
            cur.open_root_range(0, None, &mut c),
            "full range still opens"
        );
        assert_eq!(cur.key(), 1);
    }

    #[test]
    fn clone_at_root_range_hands_off_a_positioned_cursor() {
        let t = trie();
        let proto = TrieCursor::new(&t);
        let mut shard = proto
            .clone_at_root_range(3, Some(8))
            .expect("range holds 3 and 7");
        assert_eq!(shard.depth(), 1);
        assert_eq!(shard.key(), 3);
        let mut c = AccessCounter::default();
        assert!(shard.next(&mut c));
        assert_eq!(shard.key(), 7);
        assert!(proto.clone_at_root_range(4, Some(7)).is_none());
        // The prototype itself is untouched (still above the root).
        assert_eq!(proto.depth(), 0);
    }

    #[test]
    fn clamp_sup_shrinks_the_live_frame() {
        // Root level: [1, 3, 7].
        let t = trie();
        let mut cur = TrieCursor::new(&t);
        let mut c = AccessCounter::default();
        assert!(cur.open_root_range(0, None, &mut c));
        assert_eq!(cur.key(), 1);
        let before = c.index_reads;
        cur.clamp_sup(7, &mut c);
        assert!(c.index_reads > before, "the bounding search is counted");
        assert_eq!(cur.key(), 1, "current position is untouched");
        assert!(cur.next(&mut c));
        assert_eq!(cur.key(), 3);
        assert!(!cur.next(&mut c), "7 was clamped away");
    }

    #[test]
    fn clamp_sup_can_leave_only_the_current_key() {
        let t = trie();
        let mut cur = TrieCursor::new(&t);
        let mut c = AccessCounter::default();
        cur.open(&mut c);
        cur.seek(3, &mut c);
        cur.clamp_sup(4, &mut c); // everything after 3 is handed off
        assert_eq!(cur.key(), 3);
        assert!(!cur.next(&mut c));
    }

    #[test]
    #[should_panic(expected = "beyond the current key")]
    fn clamp_sup_at_or_before_the_current_key_panics() {
        let t = trie();
        let mut cur = TrieCursor::new(&t);
        let mut c = AccessCounter::default();
        cur.open(&mut c);
        cur.seek(3, &mut c);
        cur.clamp_sup(3, &mut c);
    }

    #[test]
    fn clamp_sup_applies_to_the_deepest_open_level() {
        // Children of root value 1 are [2, 5] (see `trie()`): clamping
        // the open leaf level keeps the parent's range untouched.
        let t = trie();
        let mut cur = TrieCursor::new(&t);
        let mut c = AccessCounter::default();
        cur.open(&mut c);
        cur.open(&mut c);
        cur.clamp_sup(5, &mut c);
        assert!(!cur.next(&mut c), "5 was clamped away");
        cur.up();
        assert!(cur.next(&mut c), "the root level keeps its full range");
    }

    #[test]
    #[should_panic(expected = "above the root")]
    fn open_root_range_below_root_panics() {
        let t = trie();
        let mut cur = TrieCursor::new(&t);
        let mut c = AccessCounter::default();
        cur.open(&mut c);
        cur.open_root_range(0, None, &mut c);
    }

    #[test]
    #[should_panic(expected = "above the root")]
    fn key_above_root_panics() {
        let t = trie();
        let cur = TrieCursor::new(&t);
        let _ = cur.key();
    }

    #[test]
    fn open_range_above_the_root_is_open_root_range() {
        let t = trie();
        let mut cur = TrieCursor::new(&t);
        let mut c = AccessCounter::default();
        assert!(cur.open_range(3, Some(8), &mut c));
        assert_eq!((cur.depth(), cur.key()), (1, 3));
        assert!(cur.next(&mut c));
        assert_eq!(cur.key(), 7);
        assert!(
            !cur.next(&mut c),
            "sup is exclusive of nothing here; level ends"
        );
    }

    #[test]
    fn open_range_on_an_inner_level_clamps_and_counts() {
        // Children of 7: [1, 9].
        let t = trie();
        let mut cur = TrieCursor::new(&t);
        let mut c = AccessCounter::default();
        cur.open(&mut c);
        cur.seek(7, &mut c);
        let mut c = AccessCounter::default();
        assert!(cur.open_range(2, None, &mut c));
        assert_eq!((cur.depth(), cur.key()), (2, 9));
        // Child-range words, two lower_bound probes over [1, 9], first
        // in-range value: exactly four tallied reads.
        assert_eq!(c.index_reads, 4);
        assert_eq!(c.index_bytes, (2 + 2 + 1) as u64 * WORD_BYTES);
        assert!(!cur.next(&mut c));
    }

    #[test]
    fn open_range_with_an_empty_window_stays_put() {
        // Children of 1: [2, 5].
        let t = trie();
        let mut cur = TrieCursor::new(&t);
        let mut c = AccessCounter::default();
        cur.open(&mut c);
        assert!(!cur.open_range(6, Some(9), &mut c));
        assert_eq!((cur.depth(), cur.key()), (1, 1));
    }

    #[test]
    fn clamp_sup_shrinks_an_inner_level() {
        // Children of 7: [1, 9]; clamping at 9 hands the tail away.
        let t = trie();
        let mut cur = TrieCursor::new(&t);
        let mut c = AccessCounter::default();
        cur.open(&mut c);
        cur.seek(7, &mut c);
        cur.open(&mut c);
        assert_eq!((cur.key(), cur.unvisited()), (1, 1));
        cur.clamp_sup(9, &mut c);
        assert_eq!(cur.unvisited(), 0);
        assert!(!cur.next(&mut c));
    }

    #[test]
    fn tail_validation_probes_are_tallied_below_the_root() {
        let t = trie();
        let mut cur = TrieCursor::new(&t);
        let mut c = AccessCounter::default();
        cur.open(&mut c);
        cur.seek(7, &mut c);
        cur.open(&mut c); // children [1, 9], at 1
        let before = c.index_reads;
        assert!(cur.tail_contains(9, &mut c));
        assert_eq!(
            c.index_reads - before,
            2,
            "deep-tail validation is charged per binary probe"
        );
        // Children of 1: [2, 5] hold nothing at or beyond 6.
        let mut other = TrieCursor::new(&t);
        other.open(&mut c);
        other.open(&mut c);
        let before = c.index_reads;
        assert!(!other.tail_contains(6, &mut c));
        assert!(c.index_reads > before);
    }

    #[test]
    fn split_boundary_halves_an_inner_tail() {
        // Children of 7: [1, 9]; from 1 the midpoint of the 1-key tail is 9.
        let t = trie();
        let mut cur = TrieCursor::new(&t);
        let mut c = AccessCounter::default();
        cur.open(&mut c);
        cur.seek(7, &mut c);
        cur.open(&mut c);
        assert_eq!(cur.split_boundary(), 9);
    }

    #[test]
    #[should_panic(expected = "no unvisited tail")]
    fn split_boundary_with_no_tail_panics() {
        let t = trie();
        let mut cur = TrieCursor::new(&t);
        let mut c = AccessCounter::default();
        cur.open(&mut c);
        cur.next(&mut c); // at 3
        cur.open(&mut c); // children [4]: no tail
        let _ = cur.split_boundary();
    }

    #[test]
    #[should_panic(expected = "open level")]
    fn clamp_sup_above_the_root_panics() {
        let t = trie();
        let mut cur = TrieCursor::new(&t);
        let mut c = AccessCounter::default();
        cur.clamp_sup(5, &mut c);
    }
}
