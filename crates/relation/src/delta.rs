//! Pending mutations kept beside a frozen base relation.
//!
//! A [`RelationDelta`] is the mutation layer of the incremental
//! maintenance subsystem: a small sorted relation of pending *inserts*
//! plus a sorted *tombstone* set of pending deletes, both held in **normal
//! form** relative to the base relation `B`:
//!
//! * `inserts ∩ B = ∅` — a pending insert is never already present;
//! * `tombstones ⊆ B` — a tombstone always names a live base tuple;
//! * (consequently `inserts ∩ tombstones = ∅`).
//!
//! The merged view a [`crate::MergeCursor`] exposes is then exactly
//! `(B − tombstones) ∪ inserts`, with the two unions/differences disjoint
//! — every tuple of the view comes from exactly one side, which is what
//! lets the cursor suppress tombstoned values at the leaf level only.
//!
//! Batches fold in with *deletes-first, insert-wins* semantics (a tuple
//! both deleted and inserted in one batch ends up present):
//!
//! ```text
//! I' = (I \ del) ∪ (ins \ B)
//! T' = (T ∪ (del ∩ B)) \ ins
//! ```

use crate::{Relation, RelationError, Value};

/// Pending inserts and tombstoned deletes for one base relation, in
/// normal form (see the module docs).
///
/// # Example
///
/// ```
/// use triejax_relation::{Relation, RelationDelta};
///
/// let base = Relation::from_pairs(vec![(1, 2), (3, 4)]);
/// let delta = RelationDelta::empty(2)?.apply_batch(
///     &base,
///     &Relation::from_pairs(vec![(5, 6), (1, 2)]), // (1,2) already present
///     &Relation::from_pairs(vec![(3, 4), (9, 9)]), // (9,9) never existed
/// );
/// assert_eq!(delta.inserts(), &Relation::from_pairs(vec![(5, 6)]));
/// assert_eq!(delta.tombstones(), &Relation::from_pairs(vec![(3, 4)]));
/// let merged = delta.merge_into(&base);
/// assert_eq!(merged, Relation::from_pairs(vec![(1, 2), (5, 6)]));
/// # Ok::<(), triejax_relation::RelationError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationDelta {
    inserts: Relation,
    tombstones: Relation,
}

impl RelationDelta {
    /// An empty delta of the given arity.
    ///
    /// # Errors
    ///
    /// Returns [`RelationError::ZeroArity`] if `arity == 0`.
    pub fn empty(arity: usize) -> Result<Self, RelationError> {
        Ok(RelationDelta {
            inserts: Relation::new(arity)?,
            tombstones: Relation::new(arity)?,
        })
    }

    /// Reconstructs a delta from parts already known to be in normal form
    /// relative to their base (e.g. read back from the store).
    ///
    /// # Errors
    ///
    /// Returns [`RelationError::ArityMismatch`] when the two parts
    /// disagree on arity.
    pub fn from_parts(inserts: Relation, tombstones: Relation) -> Result<Self, RelationError> {
        if inserts.arity() != tombstones.arity() {
            return Err(RelationError::ArityMismatch {
                expected: inserts.arity(),
                found: tombstones.arity(),
            });
        }
        Ok(RelationDelta {
            inserts,
            tombstones,
        })
    }

    /// Number of attributes per tuple.
    pub fn arity(&self) -> usize {
        self.inserts.arity()
    }

    /// `true` when no mutation is pending.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.tombstones.is_empty()
    }

    /// Total pending mutation size `|inserts| + |tombstones|` — the
    /// quantity the compaction ratio compares against the base size.
    pub fn len(&self) -> usize {
        self.inserts.len() + self.tombstones.len()
    }

    /// The pending inserts (disjoint from the base).
    pub fn inserts(&self) -> &Relation {
        &self.inserts
    }

    /// The pending deletes (a subset of the base).
    pub fn tombstones(&self) -> &Relation {
        &self.tombstones
    }

    /// Folds one mutation batch into this delta, returning the new delta
    /// in normal form relative to `base`. Deletes apply first and an
    /// insert of the same tuple wins, so a tuple both deleted and
    /// inserted in the batch ends up present.
    ///
    /// # Panics
    ///
    /// Panics when `base`, `inserts` or `deletes` disagree on arity.
    #[must_use]
    pub fn apply_batch(&self, base: &Relation, inserts: &Relation, deletes: &Relation) -> Self {
        assert_eq!(self.arity(), base.arity(), "delta/base arity mismatch");
        assert_eq!(self.arity(), inserts.arity(), "insert batch arity mismatch");
        assert_eq!(self.arity(), deletes.arity(), "delete batch arity mismatch");
        let next_inserts = union(
            &difference(&self.inserts, deletes),
            &difference(inserts, base),
        );
        let next_tombstones = difference(
            &union(&self.tombstones, &intersection(deletes, base)),
            inserts,
        );
        debug_assert!(intersection(&next_inserts, base).is_empty());
        debug_assert_eq!(intersection(&next_tombstones, base), next_tombstones);
        RelationDelta {
            inserts: next_inserts,
            tombstones: next_tombstones,
        }
    }

    /// Materializes the merged view `(base − tombstones) ∪ inserts` — the
    /// compaction product that becomes the new frozen base.
    ///
    /// # Panics
    ///
    /// Panics when `base` disagrees on arity.
    pub fn merge_into(&self, base: &Relation) -> Relation {
        assert_eq!(self.arity(), base.arity(), "delta/base arity mismatch");
        union(&difference(base, &self.tombstones), &self.inserts)
    }

    /// The *net effect* of a batch applied on top of this delta: the
    /// tuples the merged view gains (`added`) and loses (`removed`).
    /// These feed the semi-naive standing-query evaluation — `added` is
    /// disjoint from the old view, `removed` is a subset of it, and
    /// (new view) = (old view − removed) ∪ added.
    ///
    /// # Panics
    ///
    /// Panics when any argument disagrees on arity.
    pub fn batch_effects(
        &self,
        base: &Relation,
        inserts: &Relation,
        deletes: &Relation,
    ) -> (Relation, Relation) {
        assert_eq!(self.arity(), base.arity(), "delta/base arity mismatch");
        assert_eq!(self.arity(), inserts.arity(), "insert batch arity mismatch");
        assert_eq!(self.arity(), deletes.arity(), "delete batch arity mismatch");
        let in_old_view = |row: &[Value]| {
            (contains_row(base, row) && !contains_row(&self.tombstones, row))
                || contains_row(&self.inserts, row)
        };
        let added =
            Relation::from_tuples(self.arity(), inserts.iter().filter(|row| !in_old_view(row)))
                .expect("arity checked above");
        let removed = Relation::from_tuples(
            self.arity(),
            deletes
                .iter()
                .filter(|row| in_old_view(row) && !contains_row(inserts, row)),
        )
        .expect("arity checked above");
        (added, removed)
    }
}

/// `true` when the sorted relation contains `row` (binary search).
///
/// # Panics
///
/// Panics when `row.len()` differs from the relation arity.
pub fn contains_row(rel: &Relation, row: &[Value]) -> bool {
    assert_eq!(rel.arity(), row.len(), "probe arity mismatch");
    let mut lo = 0usize;
    let mut hi = rel.len();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        match rel.tuple(mid).cmp(row) {
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// Rows of `a` absent from `b` (sorted two-pointer merge).
pub fn difference(a: &Relation, b: &Relation) -> Relation {
    assert_eq!(a.arity(), b.arity(), "set-op arity mismatch");
    merge_rows(a, b, true, false, false)
}

/// Rows present in both `a` and `b`.
pub fn intersection(a: &Relation, b: &Relation) -> Relation {
    assert_eq!(a.arity(), b.arity(), "set-op arity mismatch");
    merge_rows(a, b, false, false, true)
}

/// Rows present in `a` or `b`.
pub fn union(a: &Relation, b: &Relation) -> Relation {
    assert_eq!(a.arity(), b.arity(), "set-op arity mismatch");
    merge_rows(a, b, true, true, true)
}

/// Two-pointer merge over two sorted relations, keeping rows according to
/// which side(s) they appear on: `only_a`, `only_b`, `both`.
fn merge_rows(a: &Relation, b: &Relation, only_a: bool, only_b: bool, both: bool) -> Relation {
    let arity = a.arity();
    let (mut i, mut j) = (0usize, 0usize);
    let mut rows: Vec<&[Value]> = Vec::new();
    while i < a.len() && j < b.len() {
        match a.tuple(i).cmp(b.tuple(j)) {
            std::cmp::Ordering::Less => {
                if only_a {
                    rows.push(a.tuple(i));
                }
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                if only_b {
                    rows.push(b.tuple(j));
                }
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                if both {
                    rows.push(a.tuple(i));
                }
                i += 1;
                j += 1;
            }
        }
    }
    if only_a {
        while i < a.len() {
            rows.push(a.tuple(i));
            i += 1;
        }
    }
    if only_b {
        while j < b.len() {
            rows.push(b.tuple(j));
            j += 1;
        }
    }
    Relation::from_tuples(arity, rows).expect("arity checked by callers")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(pairs: Vec<(Value, Value)>) -> Relation {
        Relation::from_pairs(pairs)
    }

    #[test]
    fn set_ops_agree_with_naive_definitions() {
        let a = rel(vec![(1, 1), (2, 2), (3, 3), (5, 5)]);
        let b = rel(vec![(2, 2), (4, 4), (5, 5)]);
        assert_eq!(difference(&a, &b), rel(vec![(1, 1), (3, 3)]));
        assert_eq!(intersection(&a, &b), rel(vec![(2, 2), (5, 5)]));
        assert_eq!(
            union(&a, &b),
            rel(vec![(1, 1), (2, 2), (3, 3), (4, 4), (5, 5)])
        );
        assert!(contains_row(&a, &[3, 3]));
        assert!(!contains_row(&a, &[4, 4]));
    }

    #[test]
    fn batches_fold_in_normal_form() {
        let base = rel(vec![(1, 2), (3, 4), (5, 6)]);
        let d0 = RelationDelta::empty(2).unwrap();
        // Batch 1: delete (3,4), insert (7,8) and the no-op (1,2).
        let d1 = d0.apply_batch(&base, &rel(vec![(7, 8), (1, 2)]), &rel(vec![(3, 4)]));
        assert_eq!(d1.inserts(), &rel(vec![(7, 8)]));
        assert_eq!(d1.tombstones(), &rel(vec![(3, 4)]));
        assert_eq!(d1.len(), 2);
        // Batch 2: re-insert the tombstoned (3,4), delete the pending
        // (7,8), delete the never-present (9,9).
        let d2 = d1.apply_batch(&base, &rel(vec![(3, 4)]), &rel(vec![(7, 8), (9, 9)]));
        assert!(d2.inserts().is_empty());
        assert!(d2.tombstones().is_empty());
        assert!(d2.is_empty());
        assert_eq!(d2.merge_into(&base), base);
    }

    #[test]
    fn delete_then_insert_in_one_batch_keeps_the_tuple() {
        let base = rel(vec![(1, 2)]);
        let d = RelationDelta::empty(2).unwrap().apply_batch(
            &base,
            &rel(vec![(1, 2), (3, 4)]),
            &rel(vec![(1, 2), (3, 4)]),
        );
        // (1,2): present, deleted, re-inserted → still present, no delta.
        // (3,4): absent, "deleted" (no-op), inserted → pending insert.
        assert_eq!(d.inserts(), &rel(vec![(3, 4)]));
        assert!(d.tombstones().is_empty());
        assert_eq!(d.merge_into(&base), rel(vec![(1, 2), (3, 4)]));
    }

    #[test]
    fn batch_effects_report_the_net_view_change() {
        let base = rel(vec![(1, 2), (3, 4)]);
        let d0 = RelationDelta::empty(2).unwrap();
        let (added, removed) = d0.batch_effects(
            &base,
            &rel(vec![(1, 2), (5, 6), (9, 9)]), // (1,2) is a no-op re-insert
            &rel(vec![(3, 4), (9, 9), (8, 8)]), // (9,9) re-inserted same batch
        );
        assert_eq!(added, rel(vec![(5, 6), (9, 9)]));
        assert_eq!(removed, rel(vec![(3, 4)]));
        // And the invariant: new view = (old − removed) ∪ added.
        let d1 = d0.apply_batch(
            &base,
            &rel(vec![(1, 2), (5, 6), (9, 9)]),
            &rel(vec![(3, 4), (9, 9), (8, 8)]),
        );
        assert_eq!(
            d1.merge_into(&base),
            union(&difference(&d0.merge_into(&base), &removed), &added)
        );
    }

    #[test]
    fn effects_account_for_the_standing_delta() {
        let base = rel(vec![(1, 2), (3, 4)]);
        let d = RelationDelta::empty(2).unwrap().apply_batch(
            &base,
            &rel(vec![(5, 6)]),
            &rel(vec![(3, 4)]),
        );
        // Old view: {(1,2), (5,6)}. Re-inserting (5,6) is a no-op;
        // re-inserting the tombstoned (3,4) is an addition; deleting the
        // pending (5,6) is a removal.
        let (added, removed) =
            d.batch_effects(&base, &rel(vec![(5, 6), (3, 4)]), &rel(vec![(5, 6)]));
        assert_eq!(added, rel(vec![(3, 4)]));
        assert!(
            removed.is_empty(),
            "deleted tuple was re-inserted? no — (5,6) is in the insert batch so it survives"
        );
    }

    #[test]
    fn from_parts_checks_arity() {
        let i = Relation::new(2).unwrap();
        let t = Relation::new(3).unwrap();
        assert!(RelationDelta::from_parts(i, t).is_err());
    }
}
