use std::error::Error;
use std::fmt;

/// Errors produced when constructing or validating relations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RelationError {
    /// A tuple's length did not match the relation arity.
    ArityMismatch {
        /// Declared arity of the relation.
        expected: usize,
        /// Length of the offending tuple.
        found: usize,
    },
    /// The relation arity was zero; relations must have at least one column.
    ZeroArity,
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationError::ArityMismatch { expected, found } => {
                write!(
                    f,
                    "tuple arity {found} does not match relation arity {expected}"
                )
            }
            RelationError::ZeroArity => write!(f, "relation arity must be at least 1"),
        }
    }
}

impl Error for RelationError {}

/// Structural violations found while re-adopting an exported flat trie
/// buffer in [`crate::Trie::from_parts`].
///
/// Every variant pinpoints the first inconsistency between the word buffer
/// and the per-level offset table, so a corrupted or hand-edited store file
/// is rejected with a diagnosable error instead of panicking (or silently
/// walking garbage) inside a cursor.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TrieLayoutError {
    /// The level dimensions do not sum to the buffer length.
    WordCount {
        /// Word count implied by the level dimensions.
        expected: usize,
        /// Actual length of the supplied buffer.
        found: usize,
    },
    /// A level's child-range array has the wrong number of entries
    /// (non-leaf levels need exactly `values + 1`; the leaf level none).
    ChildCount {
        /// Level index (root is 0).
        level: usize,
        /// Number of values on the level.
        values: usize,
        /// Number of child-range entries found.
        child_entries: usize,
    },
    /// A child-range offset is non-monotone, does not start at zero, or
    /// points past the next level's value array.
    Offset {
        /// Level index whose child-range array is inconsistent.
        level: usize,
        /// Index of the offending entry within the child-range array.
        index: usize,
        /// The offending offset value.
        offset: u32,
        /// The maximum admissible offset (next level's value count).
        limit: usize,
    },
    /// The declared tuple count disagrees with the leaf level's width.
    TupleCount {
        /// Leaf level value count (the true tuple count).
        expected: usize,
        /// Tuple count that was declared.
        found: usize,
    },
}

impl fmt::Display for TrieLayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrieLayoutError::WordCount { expected, found } => write!(
                f,
                "trie buffer holds {found} words but level dimensions require {expected}"
            ),
            TrieLayoutError::ChildCount {
                level,
                values,
                child_entries,
            } => write!(
                f,
                "level {level} has {values} values but {child_entries} child-range entries"
            ),
            TrieLayoutError::Offset {
                level,
                index,
                offset,
                limit,
            } => write!(
                f,
                "level {level} child-range entry {index} is {offset}, outside 0..={limit} \
                 or non-monotone"
            ),
            TrieLayoutError::TupleCount { expected, found } => write!(
                f,
                "declared tuple count {found} does not match leaf width {expected}"
            ),
        }
    }
}

impl Error for TrieLayoutError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = RelationError::ArityMismatch {
            expected: 2,
            found: 3,
        };
        let msg = err.to_string();
        assert!(msg.contains('2') && msg.contains('3'));
        assert_eq!(
            RelationError::ZeroArity.to_string(),
            "relation arity must be at least 1"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RelationError>();
    }
}
