use std::error::Error;
use std::fmt;

/// Errors produced when constructing or validating relations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RelationError {
    /// A tuple's length did not match the relation arity.
    ArityMismatch {
        /// Declared arity of the relation.
        expected: usize,
        /// Length of the offending tuple.
        found: usize,
    },
    /// The relation arity was zero; relations must have at least one column.
    ZeroArity,
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationError::ArityMismatch { expected, found } => {
                write!(
                    f,
                    "tuple arity {found} does not match relation arity {expected}"
                )
            }
            RelationError::ZeroArity => write!(f, "relation arity must be at least 1"),
        }
    }
}

impl Error for RelationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = RelationError::ArityMismatch {
            expected: 2,
            found: 3,
        };
        let msg = err.to_string();
        assert!(msg.contains('2') && msg.contains('3'));
        assert_eq!(
            RelationError::ZeroArity.to_string(),
            "relation arity must be at least 1"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RelationError>();
    }
}
