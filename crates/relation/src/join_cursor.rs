//! The cursor surface the join engines drive, abstracted over the index
//! behind it.
//!
//! [`JoinCursor`] captures exactly the operations LeapFrog TrieJoin and
//! Cached TrieJoin perform — open/up/next/seek plus the root-range
//! sharding and dynamic-split hooks of the parallel engines and the
//! positional replay hooks of the PJR cache. [`crate::TrieCursor`]
//! implements it by plain delegation (so the frozen-trie path
//! monomorphizes to today's code, access tallies included), and
//! [`crate::MergeCursor`] implements it over `base ∪ delta − tombstones`,
//! which is how every engine runs unmodified over mutated relations.

use crate::{Tally, TrieCursor, Value};

/// A trie-shaped cursor a join engine can drive.
///
/// The contract mirrors [`TrieCursor`] method for method; see its
/// documentation for the positioning semantics and panics. The extra
/// methods exist for the parallel engines:
///
/// * [`fresh`](Self::fresh) yields an above-the-root cursor over the same
///   underlying data, used to validate a prospective shard range before a
///   static shard seeds.
/// * [`unvisited`](Self::unvisited) / [`split_boundary`](Self::split_boundary)
///   expose the donor side of a dynamic split at *any* depth: how many
///   sibling keys remain beyond the current one on the deepest open
///   level, and the midpoint key at which to cut that tail.
/// * [`tail_contains`](Self::tail_contains) is the participant-validation
///   probe of a split: does any sibling at or beyond the boundary remain
///   on this cursor's deepest level? The probe is charged like a clamp
///   search so instrumented counts stay exact under deep splitting.
/// * [`clamp_sup`](Self::clamp_sup) / [`open_range`](Self::open_range)
///   are the two halves of the handoff: the donor clamps its deepest
///   level below the boundary, the donee re-opens the same level
///   restricted to the donated tail.
/// * [`cache_pos`](Self::cache_pos) / [`reopen_at`](Self::reopen_at) are
///   the PJR-cache hooks: a computing driver records the positions a
///   cached entry stores, and a replaying driver re-descends from them.
pub trait JoinCursor {
    /// Current depth: number of open levels (0 = above root).
    fn depth(&self) -> usize;

    /// `true` once the cursor stepped past the last key of the current
    /// level.
    fn at_end(&self) -> bool;

    /// Value of the current node.
    fn key(&self) -> Value;

    /// Descends to the first child of the current node (or the first root
    /// key when above the root). Returns `false` when nothing is there.
    fn open<T: Tally>(&mut self, counter: &mut T) -> bool;

    /// Descends to the root level restricted to values in `[min, sup)`.
    /// Returns `false` (cursor stays above the root) on an empty range.
    fn open_root_range<T: Tally>(
        &mut self,
        min: Value,
        sup: Option<Value>,
        counter: &mut T,
    ) -> bool;

    /// Descends one level restricted to values in `[min, sup)`. Above the
    /// root this is [`open_root_range`](Self::open_root_range); on an
    /// inner node it opens the child level clamped to the window. Returns
    /// `false` (depth unchanged) when no child value falls inside it.
    fn open_range<T: Tally>(&mut self, min: Value, sup: Option<Value>, counter: &mut T) -> bool;

    /// Shrinks the deepest open level to values `< sup` after a dynamic
    /// split handed the tail `[sup, ..)` at that depth to another task.
    fn clamp_sup<T: Tally>(&mut self, sup: Value, counter: &mut T);

    /// Ascends one level.
    fn up(&mut self);

    /// Advances to the next sibling; `false` when the level is exhausted.
    fn next<T: Tally>(&mut self, counter: &mut T) -> bool;

    /// Seeks the lowest upper bound of `v` among the remaining siblings;
    /// `false` when every remaining sibling is smaller.
    fn seek<T: Tally>(&mut self, v: Value, counter: &mut T) -> bool;

    /// A new cursor above the root of the same underlying data, used to
    /// probe a prospective split range without disturbing `self`.
    fn fresh(&self) -> Self
    where
        Self: Sized;

    /// Number of sibling keys strictly after the current position on the
    /// deepest open level (0 when that level has ended).
    fn unvisited(&self) -> usize;

    /// The key at which this cursor would cut the unvisited tail of its
    /// deepest open level in half — the split boundary a dynamic split
    /// donates. Requires `unvisited() >= 1`; the returned key is strictly
    /// greater than [`key`](Self::key).
    fn split_boundary(&self) -> Value;

    /// Whether any sibling at or beyond `boundary` remains on the deepest
    /// open level. Validation probe of a prospective split: every
    /// participant must answer `true` before the tail is donated, and the
    /// binary-search probes are tallied like clamp searches.
    fn tail_contains<T: Tally>(&self, boundary: Value, counter: &mut T) -> bool;

    /// The position token a PJR-cache entry stores for the current node.
    /// For plain tries this is the absolute level index; composite
    /// cursors may return a nominal value and rely on the key during
    /// [`reopen_at`](Self::reopen_at).
    fn cache_pos(&self) -> u32;

    /// Re-descends one level to the node recorded as `(pos, v)` by a
    /// cache entry this same cursor family computed earlier in the run.
    /// Plain tries jump straight to `pos` without touching memory;
    /// composite cursors descend by value.
    fn reopen_at<T: Tally>(&mut self, pos: u32, v: Value, counter: &mut T);
}

impl<'a> JoinCursor for TrieCursor<'a> {
    #[inline]
    fn depth(&self) -> usize {
        TrieCursor::depth(self)
    }

    #[inline]
    fn at_end(&self) -> bool {
        TrieCursor::at_end(self)
    }

    #[inline]
    fn key(&self) -> Value {
        TrieCursor::key(self)
    }

    #[inline]
    fn open<T: Tally>(&mut self, counter: &mut T) -> bool {
        TrieCursor::open(self, counter)
    }

    fn open_root_range<T: Tally>(
        &mut self,
        min: Value,
        sup: Option<Value>,
        counter: &mut T,
    ) -> bool {
        TrieCursor::open_root_range(self, min, sup, counter)
    }

    fn open_range<T: Tally>(&mut self, min: Value, sup: Option<Value>, counter: &mut T) -> bool {
        TrieCursor::open_range(self, min, sup, counter)
    }

    fn clamp_sup<T: Tally>(&mut self, sup: Value, counter: &mut T) {
        TrieCursor::clamp_sup(self, sup, counter)
    }

    #[inline]
    fn up(&mut self) {
        TrieCursor::up(self)
    }

    #[inline]
    fn next<T: Tally>(&mut self, counter: &mut T) -> bool {
        TrieCursor::next(self, counter)
    }

    #[inline]
    fn seek<T: Tally>(&mut self, v: Value, counter: &mut T) -> bool {
        TrieCursor::seek(self, v, counter)
    }

    fn fresh(&self) -> Self {
        TrieCursor::new(self.trie())
    }

    #[inline]
    fn unvisited(&self) -> usize {
        TrieCursor::unvisited(self)
    }

    #[inline]
    fn split_boundary(&self) -> Value {
        TrieCursor::split_boundary(self)
    }

    #[inline]
    fn tail_contains<T: Tally>(&self, boundary: Value, counter: &mut T) -> bool {
        TrieCursor::tail_contains(self, boundary, counter)
    }

    #[inline]
    fn cache_pos(&self) -> u32 {
        self.pos() as u32
    }

    #[inline]
    fn reopen_at<T: Tally>(&mut self, pos: u32, _v: Value, _counter: &mut T) {
        self.open_at(pos as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AccessCounter, Relation, Trie};

    fn trie() -> Trie {
        Trie::build(&Relation::from_pairs(vec![
            (1, 2),
            (1, 5),
            (3, 4),
            (7, 1),
            (7, 9),
        ]))
    }

    /// Drives the same walk through the inherent methods and the trait
    /// methods, asserting identical keys *and* identical tallies — the
    /// trait must not perturb the paper's access counting.
    #[test]
    fn trait_dispatch_matches_inherent_counts() {
        let t = trie();

        let mut inherent = TrieCursor::new(&t);
        let mut ci = AccessCounter::default();
        assert!(TrieCursor::open(&mut inherent, &mut ci));
        assert!(TrieCursor::seek(&mut inherent, 2, &mut ci));
        assert!(TrieCursor::open(&mut inherent, &mut ci));
        TrieCursor::up(&mut inherent);
        assert!(TrieCursor::next(&mut inherent, &mut ci));
        let inherent_key = TrieCursor::key(&inherent);

        fn walk<C: JoinCursor>(cur: &mut C, c: &mut AccessCounter) -> Value {
            assert!(cur.open(c));
            assert!(cur.seek(2, c));
            assert!(cur.open(c));
            cur.up();
            assert!(cur.next(c));
            cur.key()
        }
        let mut generic = TrieCursor::new(&t);
        let mut cg = AccessCounter::default();
        let generic_key = walk(&mut generic, &mut cg);

        assert_eq!(inherent_key, generic_key);
        assert_eq!(ci.index_reads, cg.index_reads);
        assert_eq!(ci.index_bytes, cg.index_bytes);
    }

    #[test]
    fn split_hooks_mirror_the_raw_level() {
        // Root level: [1, 3, 7].
        let t = trie();
        let mut cur = TrieCursor::new(&t);
        let mut c = AccessCounter::default();
        assert!(JoinCursor::open(&mut cur, &mut c));
        assert_eq!(JoinCursor::unvisited(&cur), 2);
        // pos 0, remaining 2: boundary = values[0 + 1 + 1] = 7.
        assert_eq!(JoinCursor::split_boundary(&cur), 7);
        assert!(JoinCursor::next(&mut cur, &mut c));
        assert_eq!(JoinCursor::unvisited(&cur), 1);
        assert_eq!(JoinCursor::split_boundary(&cur), 7);
        assert!(JoinCursor::next(&mut cur, &mut c));
        assert_eq!(JoinCursor::unvisited(&cur), 0);
        assert!(!JoinCursor::next(&mut cur, &mut c));
        assert_eq!(JoinCursor::unvisited(&cur), 0, "ended level has no tail");
    }

    #[test]
    fn deep_split_hooks_work_one_level_down() {
        // Children of 7: [1, 9].
        let t = trie();
        let mut cur = TrieCursor::new(&t);
        let mut c = AccessCounter::default();
        assert!(JoinCursor::open(&mut cur, &mut c));
        assert!(JoinCursor::seek(&mut cur, 7, &mut c));
        assert!(JoinCursor::open(&mut cur, &mut c));
        assert_eq!(JoinCursor::unvisited(&cur), 1);
        assert_eq!(JoinCursor::split_boundary(&cur), 9);
        assert!(JoinCursor::tail_contains(&cur, 9, &mut c));
        // Donor side: clamp below the boundary.
        JoinCursor::clamp_sup(&mut cur, 9, &mut c);
        assert_eq!(JoinCursor::unvisited(&cur), 0);
        // Donee side: re-descend under the same prefix into the tail.
        let mut donee = JoinCursor::fresh(&cur);
        assert!(JoinCursor::open(&mut donee, &mut c));
        assert!(JoinCursor::seek(&mut donee, 7, &mut c));
        assert!(donee.open_range(9, None, &mut c));
        assert_eq!(JoinCursor::key(&donee), 9);
        assert!(!JoinCursor::next(&mut donee, &mut c));
    }

    #[test]
    fn fresh_returns_an_above_root_twin() {
        let t = trie();
        let mut cur = TrieCursor::new(&t);
        let mut c = AccessCounter::default();
        assert!(JoinCursor::open(&mut cur, &mut c));
        assert!(JoinCursor::seek(&mut cur, 3, &mut c));
        let mut twin = JoinCursor::fresh(&cur);
        assert_eq!(JoinCursor::depth(&twin), 0);
        assert!(twin.open_root_range(3, Some(8), &mut c));
        assert_eq!(JoinCursor::key(&twin), 3);
        // Original untouched.
        assert_eq!(JoinCursor::key(&cur), 3);
        assert_eq!(JoinCursor::depth(&cur), 1);
    }

    #[test]
    fn reopen_at_replays_a_recorded_position() {
        let t = trie();
        let mut cur = TrieCursor::new(&t);
        let mut c = AccessCounter::default();
        assert!(JoinCursor::open(&mut cur, &mut c));
        assert!(JoinCursor::seek(&mut cur, 7, &mut c));
        let pos = JoinCursor::cache_pos(&cur);
        let key = JoinCursor::key(&cur);
        let mut replay = JoinCursor::fresh(&cur);
        let before = c.index_reads;
        replay.reopen_at(pos, key, &mut c);
        assert_eq!(c.index_reads, before, "positional replay is free on tries");
        assert_eq!(JoinCursor::key(&replay), 7);
        assert!(JoinCursor::open(&mut replay, &mut c));
        assert_eq!(JoinCursor::key(&replay), 1);
    }
}
