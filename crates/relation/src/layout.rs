use crate::Addr;

/// Size in bytes of one trie word (a `u32` value or child-range entry).
pub const WORD_BYTES: u64 = 4;

/// The simulated physical placement of one flat array.
///
/// A span is handed out by [`AddressSpace::alloc`] and later used by the
/// cycle-level simulator to turn an array index into the byte address that
/// the memory hierarchy sees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ArraySpan {
    /// First byte of the array.
    pub base: Addr,
    /// Length in bytes.
    pub bytes: u64,
}

impl ArraySpan {
    /// Byte address of the `index`-th 4-byte word in this array.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the word lies outside the span.
    pub fn word(&self, index: usize) -> Addr {
        let off = index as u64 * WORD_BYTES;
        debug_assert!(
            off < self.bytes || self.bytes == 0,
            "word index out of span"
        );
        self.base + off
    }
}

/// A bump allocator for simulated physical memory.
///
/// Index structures are laid out contiguously, mirroring how the CTJ loader
/// materializes tries into a flat region of main memory. Alignment defaults
/// to a cache line so that distinct arrays never share a line.
///
/// # Example
///
/// ```
/// use triejax_relation::AddressSpace;
///
/// let mut asp = AddressSpace::new();
/// let a = asp.alloc(100);
/// let b = asp.alloc(8);
/// assert!(b.base >= a.base + 100);
/// assert_eq!(b.base % 64, 0);
/// ```
#[derive(Debug, Clone)]
pub struct AddressSpace {
    next: Addr,
    align: u64,
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl AddressSpace {
    /// Cache-line aligned allocator starting at a non-zero base (address 0 is
    /// reserved so that a zero span is recognizably "unassigned").
    pub fn new() -> Self {
        AddressSpace {
            next: 0x1000,
            align: 64,
        }
    }

    /// Allocator with a custom alignment (must be a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `align` is zero or not a power of two.
    pub fn with_alignment(align: u64) -> Self {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        AddressSpace {
            next: 0x1000,
            align,
        }
    }

    /// Reserves `bytes` of simulated memory and returns its span.
    pub fn alloc(&mut self, bytes: u64) -> ArraySpan {
        let base = self.next.next_multiple_of(self.align);
        self.next = base + bytes;
        ArraySpan { base, bytes }
    }

    /// Total bytes reserved so far (address high-water mark).
    pub fn used(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_disjoint_and_aligned() {
        let mut asp = AddressSpace::new();
        let spans: Vec<_> = (0..10).map(|i| asp.alloc(i * 7 + 1)).collect();
        for w in spans.windows(2) {
            assert!(w[0].base + w[0].bytes <= w[1].base);
            assert_eq!(w[1].base % 64, 0);
        }
    }

    #[test]
    fn word_addressing() {
        let mut asp = AddressSpace::new();
        let s = asp.alloc(40);
        assert_eq!(s.word(0), s.base);
        assert_eq!(s.word(9), s.base + 36);
    }

    #[test]
    fn custom_alignment() {
        let mut asp = AddressSpace::with_alignment(8);
        asp.alloc(3);
        let s = asp.alloc(1);
        assert_eq!(s.base % 8, 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_alignment_panics() {
        let _ = AddressSpace::with_alignment(48);
    }

    #[test]
    fn used_tracks_high_water_mark() {
        let mut asp = AddressSpace::new();
        let before = asp.used();
        asp.alloc(1000);
        assert!(asp.used() >= before + 1000);
    }
}
