//! Relations and columnar trie indexes for the TrieJax reproduction.
//!
//! This crate provides the storage substrate described in Section 3.2 of the
//! TrieJax paper: relations (sets of fixed-arity tuples over `u32` values)
//! and their *trie* representation in the flat, EmptyHeaded-style physical
//! layout — one sorted value array per trie level plus a cumulative
//! child-range array linking consecutive levels (paper Figure 6).
//!
//! The three core types are:
//!
//! * [`Relation`] — a sorted, deduplicated set of tuples.
//! * [`Trie`] — the columnar index built from a relation, with optional
//!   simulated memory addresses assigned through an [`AddressSpace`] so that
//!   cycle-level simulators can replay each word access.
//! * [`TrieCursor`] — a LeapFrog-TrieJoin style cursor with `open`, `up`,
//!   `next` and `seek` (lowest-upper-bound) operations, instrumented through
//!   the [`Tally`] trait: pass a [`Counting`] (alias of [`AccessCounter`])
//!   to count every memory touch, or [`NoTally`] to compile the
//!   instrumentation away entirely.
//!
//! # Example
//!
//! ```
//! use triejax_relation::{Relation, Trie};
//!
//! let rel = Relation::from_tuples(2, vec![vec![1, 2], vec![1, 1], vec![2, 5]])?;
//! let trie = Trie::build(&rel);
//! assert_eq!(trie.level(0).values(), &[1, 2]);
//! assert_eq!(trie.tuple_count(), 3);
//! # Ok::<(), triejax_relation::RelationError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access;
mod cursor;
pub mod delta;
mod error;
mod join_cursor;
mod layout;
mod merge;
mod relation;
mod trie;

pub use access::{AccessCounter, AccessKind, Counting, NoTally, Tally};
pub use cursor::TrieCursor;
pub use delta::RelationDelta;
pub use error::{RelationError, TrieLayoutError};
pub use join_cursor::JoinCursor;
pub use layout::{AddressSpace, ArraySpan, WORD_BYTES};
pub use merge::MergeCursor;
pub use relation::Relation;
pub use trie::{Trie, TrieLevel};

/// The value domain of every attribute: graph vertex identifiers.
pub type Value = u32;

/// A simulated physical memory address (byte granular).
pub type Addr = u64;
