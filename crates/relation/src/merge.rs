//! A join cursor over `base ∪ delta − tombstones`.
//!
//! [`MergeCursor`] walks the *merged view* of a mutated relation — the
//! frozen base [`Trie`], a small delta trie of pending inserts, and a
//! sorted tombstone set of pending deletes — while presenting the exact
//! [`JoinCursor`] surface the join engines drive. LFTJ and CTJ therefore
//! run unmodified over mutated relations: the drivers monomorphize over
//! the cursor type and never learn a delta exists.
//!
//! Mechanics: at each level the merged key is the **minimum** over the
//! sides open at that level; `open` descends only the sides positioned at
//! the merged key and narrows the tombstone row range by binary search on
//! the parent column. Tombstones are suppressed at the **leaf level
//! only**: an inner node whose entire subtree is tombstoned still appears
//! (a *phantom* node), which can cost wasted probes but never wrong
//! tuples — the drivers already tolerate `open` returning `false` at any
//! depth. With the delta in normal form (`inserts ∩ base = ∅`,
//! `tombstones ⊆ base`), a leaf value belongs to exactly one side, so the
//! suppression check only ever applies to base-side values.

use crate::{AccessKind, JoinCursor, Relation, Tally, Trie, TrieCursor, Value, WORD_BYTES};

/// A [`JoinCursor`] over `base ∪ delta − tombstones`.
///
/// Either side may be absent: `base = None` models a relation created
/// purely by inserts (no frozen trie yet), `delta = None` an unmutated
/// relation. With both absent the view is empty (`open` returns `false`).
///
/// # Example
///
/// ```
/// use triejax_relation::{JoinCursor, MergeCursor, NoTally, Relation, Trie};
///
/// let base = Trie::build(&Relation::from_pairs(vec![(1, 2), (3, 4)]));
/// let delta = Trie::build(&Relation::from_pairs(vec![(1, 9)]));
/// let tomb = Relation::from_pairs(vec![(3, 4)]);
/// let mut cur = MergeCursor::new(Some(&base), Some(&delta), &tomb);
/// assert!(cur.open(&mut NoTally)); // merged roots: [1] — 3's subtree is all-tombstoned
/// assert_eq!(cur.key(), 1);
/// assert!(cur.open(&mut NoTally));
/// assert_eq!(cur.key(), 2);
/// assert!(cur.next(&mut NoTally));
/// assert_eq!(cur.key(), 9);
/// ```
#[derive(Debug, Clone)]
pub struct MergeCursor<'a> {
    arity: usize,
    base: Option<TrieCursor<'a>>,
    delta: Option<TrieCursor<'a>>,
    /// Pending deletes, sorted row-major, in the same column order as the
    /// tries. Always a subset of the base relation (normal form).
    tomb: &'a Relation,
    frames: Vec<MergeFrame>,
}

/// Per-open-level state: which sides hold a frame at this level, and the
/// tombstone rows whose prefix matches the path above it.
#[derive(Debug, Clone, Copy)]
struct MergeFrame {
    base_open: bool,
    delta_open: bool,
    tomb_lo: usize,
    tomb_hi: usize,
}

impl<'a> MergeCursor<'a> {
    /// Creates a cursor above the root of the merged view.
    ///
    /// # Panics
    ///
    /// Panics when the present sides and `tombstones` disagree on arity.
    pub fn new(base: Option<&'a Trie>, delta: Option<&'a Trie>, tombstones: &'a Relation) -> Self {
        let arity = tombstones.arity();
        if let Some(b) = base {
            assert_eq!(b.arity(), arity, "base/tombstone arity mismatch");
        }
        if let Some(d) = delta {
            assert_eq!(d.arity(), arity, "delta/tombstone arity mismatch");
        }
        MergeCursor {
            arity,
            base: base.map(TrieCursor::new),
            delta: delta.map(TrieCursor::new),
            tomb: tombstones,
            frames: Vec::with_capacity(arity),
        }
    }

    /// Key of the base side at the current level, when it is open there
    /// and not ended.
    fn base_key(&self) -> Option<Value> {
        let f = self.frames.last()?;
        match &self.base {
            Some(c) if f.base_open && !c.at_end() => Some(c.key()),
            _ => None,
        }
    }

    /// Key of the delta side at the current level, when it is open there
    /// and not ended.
    fn delta_key(&self) -> Option<Value> {
        let f = self.frames.last()?;
        match &self.delta {
            Some(c) if f.delta_open && !c.at_end() => Some(c.key()),
            _ => None,
        }
    }

    /// Pops the current frame and ascends every side that was open at it.
    fn pop_level(&mut self) {
        let f = self.frames.pop().expect("cursor is above the root");
        if f.base_open {
            self.base.as_mut().expect("flagged side exists").up();
        }
        if f.delta_open {
            self.delta.as_mut().expect("flagged side exists").up();
        }
    }

    /// `true` when `v` appears in the final tombstone column within the
    /// current leaf frame's row range. One counted probe per midpoint
    /// read, mirroring the trie-side binary searches.
    fn tombstoned<T: Tally>(&self, f: &MergeFrame, v: Value, counter: &mut T) -> bool {
        let col = self.arity - 1;
        let (mut lo, mut hi) = (f.tomb_lo, f.tomb_hi);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            counter.record(AccessKind::IndexRead, WORD_BYTES);
            let tv = self.tomb.tuple(mid)[col];
            if tv < v {
                lo = mid + 1;
            } else if tv > v {
                hi = mid;
            } else {
                return true;
            }
        }
        false
    }

    /// Narrows the parent frame's tombstone row range to rows whose
    /// column `col` equals `k`. Rows in the parent range share the path
    /// prefix above `col`, so that column is sorted within the range.
    fn narrow_tomb<T: Tally>(
        &self,
        parent: &MergeFrame,
        col: usize,
        k: Value,
        counter: &mut T,
    ) -> (usize, usize) {
        let mut probe = |lo: usize, hi: usize, below: Value| {
            // First row index in [lo, hi) whose column value is >= below.
            let (mut lo, mut hi) = (lo, hi);
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                counter.record(AccessKind::IndexRead, WORD_BYTES);
                if self.tomb.tuple(mid)[col] < below {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            lo
        };
        if parent.tomb_lo >= parent.tomb_hi {
            return (parent.tomb_lo, parent.tomb_lo);
        }
        let lo = probe(parent.tomb_lo, parent.tomb_hi, k);
        let hi = probe(lo, parent.tomb_hi, k + 1);
        (lo, hi)
    }

    /// At the leaf level, skips base-side values present in the tombstone
    /// set until an admissible value (or the end of the level) is
    /// reached. Returns `false` when the level is exhausted. Delta-side
    /// values are never tombstoned (normal form), and at the leaf a value
    /// belongs to exactly one side, so only strict base-minimum values
    /// need the membership check.
    fn settle_leaf<T: Tally>(&mut self, counter: &mut T) -> bool {
        debug_assert_eq!(self.frames.len(), self.arity, "settle applies at the leaf");
        loop {
            let f = *self.frames.last().expect("leaf frame");
            let (bk, dk) = (self.base_key(), self.delta_key());
            match (bk, dk) {
                (None, None) => return false,
                (Some(b), dk) if dk.is_none_or(|d| b < d) => {
                    if self.tombstoned(&f, b, counter) {
                        let side = self.base.as_mut().expect("base key implies base side");
                        side.next(counter);
                        continue;
                    }
                    return true;
                }
                _ => return true, // minimum comes from the delta side
            }
        }
    }
}

impl<'a> JoinCursor for MergeCursor<'a> {
    fn depth(&self) -> usize {
        self.frames.len()
    }

    fn at_end(&self) -> bool {
        assert!(!self.frames.is_empty(), "cursor is above the root");
        self.base_key().is_none() && self.delta_key().is_none()
    }

    fn key(&self) -> Value {
        assert!(!self.frames.is_empty(), "cursor is above the root");
        match (self.base_key(), self.delta_key()) {
            (Some(b), Some(d)) => b.min(d),
            (Some(b), None) => b,
            (None, Some(d)) => d,
            (None, None) => panic!("cursor is at end"),
        }
    }

    fn open<T: Tally>(&mut self, counter: &mut T) -> bool {
        let d = self.frames.len();
        assert!(d < self.arity, "cannot open past the leaf level");
        let (desc_base, desc_delta, tomb_lo, tomb_hi) = if d == 0 {
            (
                self.base.is_some(),
                self.delta.is_some(),
                0,
                self.tomb.len(),
            )
        } else {
            let f = *self.frames.last().expect("non-empty frames");
            let k = self.key(); // panics on an ended level, like TrieCursor
            let desc_base = self.base_key() == Some(k);
            let desc_delta = self.delta_key() == Some(k);
            let (lo, hi) = self.narrow_tomb(&f, d - 1, k, counter);
            (desc_base, desc_delta, lo, hi)
        };
        let base_open = desc_base && self.base.as_mut().expect("descending side").open(counter);
        let delta_open = desc_delta && self.delta.as_mut().expect("descending side").open(counter);
        if !base_open && !delta_open {
            return false;
        }
        self.frames.push(MergeFrame {
            base_open,
            delta_open,
            tomb_lo,
            tomb_hi,
        });
        if self.frames.len() == self.arity && !self.settle_leaf(counter) {
            // Every admissible leaf value under this node is tombstoned
            // (a phantom node): undo the descent and report it empty.
            self.pop_level();
            return false;
        }
        true
    }

    fn open_root_range<T: Tally>(
        &mut self,
        min: Value,
        sup: Option<Value>,
        counter: &mut T,
    ) -> bool {
        assert!(
            self.frames.is_empty(),
            "root range opens from above the root"
        );
        let base_open = self
            .base
            .as_mut()
            .is_some_and(|c| c.open_root_range(min, sup, counter));
        let delta_open = self
            .delta
            .as_mut()
            .is_some_and(|c| c.open_root_range(min, sup, counter));
        if !base_open && !delta_open {
            return false;
        }
        self.frames.push(MergeFrame {
            base_open,
            delta_open,
            tomb_lo: 0,
            tomb_hi: self.tomb.len(),
        });
        if self.arity == 1 && !self.settle_leaf(counter) {
            self.pop_level();
            return false;
        }
        true
    }

    fn open_range<T: Tally>(&mut self, min: Value, sup: Option<Value>, counter: &mut T) -> bool {
        let d = self.frames.len();
        if d == 0 {
            return self.open_root_range(min, sup, counter);
        }
        assert!(d < self.arity, "cannot open past the leaf level");
        let f = *self.frames.last().expect("non-empty frames");
        let k = self.key(); // panics on an ended level, like TrieCursor
        let desc_base = self.base_key() == Some(k);
        let desc_delta = self.delta_key() == Some(k);
        let (tomb_lo, tomb_hi) = self.narrow_tomb(&f, d - 1, k, counter);
        let base_open = desc_base
            && self
                .base
                .as_mut()
                .expect("descending side")
                .open_range(min, sup, counter);
        let delta_open = desc_delta
            && self
                .delta
                .as_mut()
                .expect("descending side")
                .open_range(min, sup, counter);
        if !base_open && !delta_open {
            return false;
        }
        self.frames.push(MergeFrame {
            base_open,
            delta_open,
            tomb_lo,
            tomb_hi,
        });
        if self.frames.len() == self.arity && !self.settle_leaf(counter) {
            self.pop_level();
            return false;
        }
        true
    }

    fn clamp_sup<T: Tally>(&mut self, sup: Value, counter: &mut T) {
        assert!(!self.frames.is_empty(), "clamp applies to an open level");
        let f = *self.frames.last().expect("non-empty frames");
        assert!(
            self.key() < sup,
            "split boundary must lie beyond the current key"
        );
        // Individual sides may sit at or past the boundary (the merged
        // key is the minimum over sides), so the clamp is lenient per
        // side: such a side simply ends in place.
        if f.base_open {
            self.base
                .as_mut()
                .expect("flagged side exists")
                .clamp_sup_lenient(sup, counter);
        }
        if f.delta_open {
            self.delta
                .as_mut()
                .expect("flagged side exists")
                .clamp_sup_lenient(sup, counter);
        }
    }

    fn up(&mut self) {
        self.pop_level();
    }

    fn next<T: Tally>(&mut self, counter: &mut T) -> bool {
        let k = self.key(); // panics above root / at end, like TrieCursor
        let f = *self.frames.last().expect("non-empty frames");
        if f.base_open {
            if let Some(c) = self.base.as_mut() {
                if !c.at_end() && c.key() == k {
                    c.next(counter);
                }
            }
        }
        if f.delta_open {
            if let Some(c) = self.delta.as_mut() {
                if !c.at_end() && c.key() == k {
                    c.next(counter);
                }
            }
        }
        if self.frames.len() == self.arity {
            self.settle_leaf(counter)
        } else {
            !self.at_end()
        }
    }

    fn seek<T: Tally>(&mut self, v: Value, counter: &mut T) -> bool {
        assert!(!self.frames.is_empty(), "cursor is above the root");
        assert!(!self.at_end(), "cursor is already at end");
        let f = *self.frames.last().expect("non-empty frames");
        if f.base_open {
            if let Some(c) = self.base.as_mut() {
                if !c.at_end() && c.key() < v {
                    c.seek(v, counter);
                }
            }
        }
        if f.delta_open {
            if let Some(c) = self.delta.as_mut() {
                if !c.at_end() && c.key() < v {
                    c.seek(v, counter);
                }
            }
        }
        if self.frames.len() == self.arity {
            self.settle_leaf(counter)
        } else {
            !self.at_end()
        }
    }

    fn fresh(&self) -> Self {
        MergeCursor {
            arity: self.arity,
            base: self.base.as_ref().map(|c| TrieCursor::new(c.trie())),
            delta: self.delta.as_ref().map(|c| TrieCursor::new(c.trie())),
            tomb: self.tomb,
            frames: Vec::with_capacity(self.arity),
        }
    }

    fn unvisited(&self) -> usize {
        assert!(
            !self.frames.is_empty(),
            "split hooks apply to an open level"
        );
        let f = self.frames.last().expect("non-empty frames");
        // When the last merge frame flags a side open, that side's own
        // deepest frame sits at the same depth (descent flags are
        // monotone: a side that drops out never re-enters deeper), so the
        // side's deepest-level tail is exactly its share of the merged
        // tail.
        let tail = |c: &Option<TrieCursor<'_>>, open: bool| -> usize {
            match c {
                Some(c) if open => c.unvisited(),
                _ => 0,
            }
        };
        tail(&self.base, f.base_open) + tail(&self.delta, f.delta_open)
    }

    fn split_boundary(&self) -> Value {
        let depth = self.frames.len();
        assert!(depth >= 1, "split hooks apply to an open level");
        let f = self.frames.last().expect("non-empty frames");
        let tail = |c: &Option<TrieCursor<'_>>, open: bool| -> usize {
            match c {
                Some(c) if open => c.unvisited(),
                _ => 0,
            }
        };
        let base_tail = tail(&self.base, f.base_open);
        let delta_tail = tail(&self.delta, f.delta_open);
        assert!(base_tail + delta_tail >= 1, "no unvisited tail to split");
        // Cut the longer side's tail in half; the boundary is strictly
        // greater than that side's current key, hence than the merged
        // key. Boundaries need not exist on the other side — donated
        // tails cover contiguous value ranges, not members.
        let donor = if base_tail >= delta_tail {
            self.base.as_ref().expect("non-zero tail")
        } else {
            self.delta.as_ref().expect("non-zero tail")
        };
        donor.split_boundary()
    }

    fn tail_contains<T: Tally>(&self, boundary: Value, counter: &mut T) -> bool {
        assert!(
            !self.frames.is_empty(),
            "split hooks apply to an open level"
        );
        let f = self.frames.last().expect("non-empty frames");
        let side = |c: &Option<TrieCursor<'_>>, open: bool, counter: &mut T| -> bool {
            match c {
                Some(c) if open => c.tail_contains(boundary, counter),
                _ => false,
            }
        };
        // Probe both sides unconditionally so the tally does not depend
        // on which side answers first.
        let in_base = side(&self.base, f.base_open, counter);
        let in_delta = side(&self.delta, f.delta_open, counter);
        in_base || in_delta
    }

    fn cache_pos(&self) -> u32 {
        // Positions are meaningless across a merged view; replay descends
        // by value (see `reopen_at`).
        0
    }

    fn reopen_at<T: Tally>(&mut self, _pos: u32, v: Value, counter: &mut T) {
        let opened = self.open(counter);
        debug_assert!(opened, "replayed value must exist in the merged view");
        let found = self.seek(v, counter);
        debug_assert!(
            found && self.key() == v,
            "replayed value must exist in the merged view"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AccessCounter, RelationDelta};

    /// Enumerates the merged view by exhaustively walking the cursor.
    fn enumerate(cur: &mut MergeCursor<'_>) -> Vec<Vec<Value>> {
        fn walk(
            cur: &mut MergeCursor<'_>,
            arity: usize,
            row: &mut Vec<Value>,
            out: &mut Vec<Vec<Value>>,
        ) {
            let mut c = AccessCounter::default();
            if !cur.open(&mut c) {
                return;
            }
            loop {
                row.push(cur.key());
                if cur.depth() == arity {
                    out.push(row.clone());
                } else {
                    walk(cur, arity, row, out);
                }
                row.pop();
                if !cur.next(&mut c) {
                    break;
                }
            }
            cur.up();
        }
        let arity = cur.arity;
        let mut out = Vec::new();
        walk(cur, arity, &mut Vec::new(), &mut out);
        out
    }

    fn merged_rows(rel: &Relation) -> Vec<Vec<Value>> {
        rel.iter().map(<[Value]>::to_vec).collect()
    }

    #[test]
    fn enumeration_equals_the_merged_relation() {
        let base_rel = Relation::from_pairs(vec![(1, 2), (1, 5), (3, 4), (7, 1), (7, 9)]);
        let delta = RelationDelta::empty(2).unwrap().apply_batch(
            &base_rel,
            &Relation::from_pairs(vec![(1, 3), (2, 2), (9, 9)]),
            &Relation::from_pairs(vec![(1, 5), (3, 4)]),
        );
        let base = Trie::build(&base_rel);
        let dtrie = Trie::build(delta.inserts());
        let mut cur = MergeCursor::new(Some(&base), Some(&dtrie), delta.tombstones());
        assert_eq!(
            enumerate(&mut cur),
            merged_rows(&delta.merge_into(&base_rel))
        );
    }

    #[test]
    fn delta_only_and_empty_delta_sides() {
        let rel = Relation::from_pairs(vec![(1, 2), (3, 4)]);
        let trie = Trie::build(&rel);
        let none = Relation::new(2).unwrap();
        // Empty delta: the merged view is the base.
        let mut cur = MergeCursor::new(Some(&trie), None, &none);
        assert_eq!(enumerate(&mut cur), merged_rows(&rel));
        // Delta only (no base trie): the merged view is the delta.
        let mut cur = MergeCursor::new(None, Some(&trie), &none);
        assert_eq!(enumerate(&mut cur), merged_rows(&rel));
        // Neither side: empty view, open refuses.
        let mut cur = MergeCursor::new(None, None, &none);
        assert!(!cur.open(&mut AccessCounter::default()));
        assert_eq!(cur.depth(), 0);
    }

    #[test]
    fn fully_tombstoned_subtree_is_a_phantom() {
        // 3's entire subtree is deleted: the root key 3 still shows (a
        // phantom), but open() under it reports false and the cursor
        // recovers above it.
        let base_rel = Relation::from_pairs(vec![(1, 2), (3, 4), (3, 5)]);
        let base = Trie::build(&base_rel);
        let tomb = Relation::from_pairs(vec![(3, 4), (3, 5)]);
        let mut cur = MergeCursor::new(Some(&base), None, &tomb);
        let mut c = AccessCounter::default();
        assert!(cur.open(&mut c));
        assert!(cur.seek(3, &mut c));
        assert_eq!(cur.key(), 3);
        assert!(!cur.open(&mut c), "all children tombstoned");
        assert_eq!(cur.depth(), 1, "failed open leaves the cursor in place");
        assert_eq!(cur.key(), 3);
    }

    #[test]
    fn seek_skips_tombstoned_leaves() {
        let base_rel = Relation::from_pairs(vec![(1, 2), (1, 4), (1, 6)]);
        let base = Trie::build(&base_rel);
        let tomb = Relation::from_pairs(vec![(1, 4)]);
        let mut cur = MergeCursor::new(Some(&base), None, &tomb);
        let mut c = AccessCounter::default();
        assert!(cur.open(&mut c));
        assert!(cur.open(&mut c));
        assert_eq!(cur.key(), 2);
        assert!(cur.seek(3, &mut c), "lub of 3 skips the tombstoned 4");
        assert_eq!(cur.key(), 6);
    }

    #[test]
    fn root_range_and_clamp_respect_side_skew() {
        // Base roots [1, 3]; delta roots [5, 7, 9].
        let base_rel = Relation::from_pairs(vec![(1, 1), (3, 3)]);
        let delta_rel = Relation::from_pairs(vec![(5, 5), (7, 7), (9, 9)]);
        let base = Trie::build(&base_rel);
        let dtrie = Trie::build(&delta_rel);
        let none = Relation::new(2).unwrap();
        let mut cur = MergeCursor::new(Some(&base), Some(&dtrie), &none);
        let mut c = AccessCounter::default();
        assert!(cur.open_root_range(0, None, &mut c));
        assert_eq!(cur.key(), 1);
        // unvisited: base 1 (the 3), delta 3 (5/7/9 minus the current? no
        // — delta is positioned at 5, so 7 and 9 remain) = 1 + 2 = 3.
        assert_eq!(cur.unvisited(), 3);
        // Clamp at 5: the base keeps [1, 3], the delta side ends.
        cur.clamp_sup(5, &mut c);
        assert_eq!(cur.key(), 1);
        assert!(cur.next(&mut c));
        assert_eq!(cur.key(), 3);
        assert!(!cur.next(&mut c), "5/7/9 were clamped away");
        // The handed-off range opens on a fresh cursor.
        let mut tail = cur.fresh();
        assert!(tail.open_root_range(5, None, &mut c));
        assert_eq!(tail.key(), 5);
        assert!(tail.next(&mut c));
        assert_eq!(tail.key(), 7);
    }

    #[test]
    fn split_boundary_comes_from_the_longer_side() {
        let base_rel = Relation::from_pairs(vec![(1, 1)]);
        let delta_rel = Relation::from_pairs(vec![(2, 2), (4, 4), (6, 6), (8, 8)]);
        let base = Trie::build(&base_rel);
        let dtrie = Trie::build(&delta_rel);
        let none = Relation::new(2).unwrap();
        let mut cur = MergeCursor::new(Some(&base), Some(&dtrie), &none);
        let mut c = AccessCounter::default();
        assert!(cur.open(&mut c));
        assert_eq!(cur.key(), 1);
        // Base tail 0, delta tail 3 (positioned at 2; 4/6/8 remain).
        assert_eq!(cur.unvisited(), 3);
        let boundary = cur.split_boundary();
        // Delta donor: values[0 + 1 + 3/2] = values[2] = 6.
        assert_eq!(boundary, 6);
        assert!(boundary > cur.key());
    }

    #[test]
    fn deep_split_hooks_cover_both_sides_of_the_merge() {
        // Children of 1: base [2, 6], delta [4, 8].
        let base_rel = Relation::from_pairs(vec![(1, 2), (1, 6)]);
        let delta_rel = Relation::from_pairs(vec![(1, 4), (1, 8)]);
        let base = Trie::build(&base_rel);
        let dtrie = Trie::build(&delta_rel);
        let none = Relation::new(2).unwrap();
        let mut cur = MergeCursor::new(Some(&base), Some(&dtrie), &none);
        let mut c = AccessCounter::default();
        assert!(cur.open(&mut c));
        assert!(cur.open(&mut c));
        assert_eq!((cur.depth(), cur.key()), (2, 2));
        // Base tail 1 (the 6), delta tail 1 (the 8).
        assert_eq!(cur.unvisited(), 2);
        // Equal tails: the base wins the tie; boundary = base values[1] = 6.
        assert_eq!(cur.split_boundary(), 6);
        let before = c.index_reads;
        assert!(cur.tail_contains(6, &mut c));
        assert!(c.index_reads > before, "deep validation probes are tallied");
        assert!(!cur.tail_contains(9, &mut c));
        // Donor half: clamp the child level below 6 → only 2 and 4 remain.
        cur.clamp_sup(6, &mut c);
        assert!(cur.next(&mut c));
        assert_eq!(cur.key(), 4);
        assert!(!cur.next(&mut c), "6 and 8 were donated");
        // Donee half: re-descend under the prefix into [6, ∞).
        let mut donee = cur.fresh();
        assert!(donee.open(&mut c));
        assert!(donee.open_range(6, None, &mut c));
        assert_eq!((donee.depth(), donee.key()), (2, 6));
        assert!(donee.next(&mut c));
        assert_eq!(donee.key(), 8);
        assert!(!donee.next(&mut c));
    }

    #[test]
    fn open_range_skips_tombstoned_leaves() {
        // Children of 1 in the merged view: base [2, 6, 8] minus tomb (1,6).
        let base_rel = Relation::from_pairs(vec![(1, 2), (1, 6), (1, 8)]);
        let base = Trie::build(&base_rel);
        let tomb = Relation::from_pairs(vec![(1, 6)]);
        let mut cur = MergeCursor::new(Some(&base), None, &tomb);
        let mut c = AccessCounter::default();
        assert!(cur.open(&mut c));
        assert!(cur.open_range(3, None, &mut c));
        assert_eq!(cur.key(), 8, "tombstoned 6 is settled past");
        assert!(!cur.next(&mut c));
        // A window holding only tombstoned values is a phantom: the
        // descent is undone.
        let mut phantom = cur.fresh();
        assert!(phantom.open(&mut c));
        assert!(!phantom.open_range(3, Some(7), &mut c));
        assert_eq!(phantom.depth(), 1);
    }

    #[test]
    fn reopen_at_descends_by_value() {
        let base_rel = Relation::from_pairs(vec![(1, 2), (3, 4), (5, 6)]);
        let base = Trie::build(&base_rel);
        let delta_rel = Relation::from_pairs(vec![(4, 4)]);
        let dtrie = Trie::build(&delta_rel);
        let tomb = Relation::from_pairs(vec![(3, 4)]);
        let mut cur = MergeCursor::new(Some(&base), Some(&dtrie), &tomb);
        let mut c = AccessCounter::default();
        cur.reopen_at(0, 4, &mut c);
        assert_eq!((cur.depth(), cur.key()), (1, 4));
        cur.reopen_at(0, 4, &mut c);
        assert_eq!((cur.depth(), cur.key()), (2, 4));
    }

    #[test]
    fn unary_views_suppress_at_the_root() {
        let base_rel = Relation::from_tuples(1, vec![vec![1u32], vec![2], vec![3]]).unwrap();
        let base = Trie::build(&base_rel);
        let tomb = Relation::from_tuples(1, vec![vec![2u32]]).unwrap();
        let mut cur = MergeCursor::new(Some(&base), None, &tomb);
        assert_eq!(enumerate(&mut cur), vec![vec![1], vec![3]]);
        // A root range that holds only the tombstoned value refuses.
        let mut cur = MergeCursor::new(Some(&base), None, &tomb);
        let mut c = AccessCounter::default();
        assert!(!cur.open_root_range(2, Some(3), &mut c));
        assert_eq!(cur.depth(), 0);
    }
}
