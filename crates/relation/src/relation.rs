use crate::{RelationError, Value};
use triejax_exec::WorkerPool;

/// A relation: a sorted, duplicate-free set of fixed-arity tuples.
///
/// Tuples are stored row-major and kept in lexicographic order, which is the
/// order required to build the trie index (see [`crate::Trie`]). Construction
/// sorts and deduplicates eagerly so every downstream consumer can rely on
/// the invariant.
///
/// # Example
///
/// ```
/// use triejax_relation::Relation;
///
/// let rel = Relation::from_tuples(2, vec![vec![2, 1], vec![1, 3], vec![2, 1]])?;
/// assert_eq!(rel.len(), 2); // duplicate removed
/// assert_eq!(rel.tuple(0), &[1, 3]); // sorted
/// # Ok::<(), triejax_relation::RelationError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Relation {
    arity: usize,
    /// Row-major tuple storage; `data.len() == arity * len`.
    data: Vec<Value>,
    /// Lazily memoized content fingerprint: computed on first use, so
    /// caches and stores never rehash the full row buffer per query —
    /// and throwaway intermediates (e.g. the permuted relation a trie
    /// build consumes) never pay the hash at all.
    fingerprint: std::sync::OnceLock<u64>,
}

// Equality, ordering-for-hash and the fingerprint are all functions of
// (arity, data) alone — the memo cell must not participate, or an
// unhashed relation would compare unequal to its hashed twin.
impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.arity == other.arity && self.data == other.data
    }
}

impl Eq for Relation {}

impl std::hash::Hash for Relation {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.arity.hash(state);
        self.data.hash(state);
    }
}

impl Relation {
    /// Creates an empty relation of the given arity.
    ///
    /// # Errors
    ///
    /// Returns [`RelationError::ZeroArity`] if `arity == 0`.
    pub fn new(arity: usize) -> Result<Self, RelationError> {
        if arity == 0 {
            return Err(RelationError::ZeroArity);
        }
        Ok(Relation {
            arity,
            data: Vec::new(),
            fingerprint: std::sync::OnceLock::new(),
        })
    }

    /// Builds a relation from an iterator of tuples, sorting and removing
    /// duplicates.
    ///
    /// # Errors
    ///
    /// Returns [`RelationError::ZeroArity`] for `arity == 0`, or
    /// [`RelationError::ArityMismatch`] if any tuple length differs from
    /// `arity`.
    pub fn from_tuples<I, T>(arity: usize, tuples: I) -> Result<Self, RelationError>
    where
        I: IntoIterator<Item = T>,
        T: AsRef<[Value]>,
    {
        let mut rel = Relation::new(arity)?;
        let mut data = Vec::new();
        for t in tuples {
            let t = t.as_ref();
            if t.len() != arity {
                return Err(RelationError::ArityMismatch {
                    expected: arity,
                    found: t.len(),
                });
            }
            data.extend_from_slice(t);
        }
        rel.data = data;
        rel.normalize();
        Ok(rel)
    }

    /// Builds a binary relation from `(source, target)` pairs.
    ///
    /// This is the common path for graph edge tables, where each pair is one
    /// directed edge.
    pub fn from_pairs<I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (Value, Value)>,
    {
        let mut data = Vec::new();
        for (a, b) in pairs {
            data.push(a);
            data.push(b);
        }
        let mut rel = Relation {
            arity: 2,
            data,
            fingerprint: std::sync::OnceLock::new(),
        };
        rel.normalize();
        rel
    }

    /// Number of attributes (columns) per tuple.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.data.len() / self.arity
    }

    /// Returns `true` if the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the `i`-th tuple in lexicographic order.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn tuple(&self, i: usize) -> &[Value] {
        &self.data[i * self.arity..(i + 1) * self.arity]
    }

    /// Iterates over tuples in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = &[Value]> + '_ {
        self.data.chunks_exact(self.arity)
    }

    /// Returns a new relation whose columns are permuted by `perm`:
    /// output column `i` is input column `perm[i]`.
    ///
    /// This is how one edge table yields tries in different attribute
    /// orders, e.g. `T(z, w)` versus `T(w, z)` in paper Figure 2.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..arity`.
    pub fn permute(&self, perm: &[usize]) -> Relation {
        self.validate_perm(perm);
        let mut data = Vec::with_capacity(self.data.len());
        for t in self.iter() {
            for &p in perm {
                data.push(t[p]);
            }
        }
        let mut rel = Relation {
            arity: self.arity,
            data,
            fingerprint: std::sync::OnceLock::new(),
        };
        rel.normalize();
        rel
    }

    /// Parallel [`Relation::permute`]: column-permutes row chunks as pool
    /// tasks (each chunk sorted and deduplicated locally), then k-way
    /// merge-deduplicates the sorted chunks on the caller's thread.
    ///
    /// The result is the sorted duplicate-free set of permuted tuples, which
    /// is independent of the chunking — `permute_on` is deterministic and
    /// always equals [`Relation::permute`].
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..arity`.
    pub fn permute_on(&self, perm: &[usize], pool: &WorkerPool) -> Relation {
        self.validate_perm(perm);
        let arity = self.arity;
        let n = self.len();
        let k = pool.workers().min(n);
        if k <= 1 {
            return self.permute(perm);
        }
        let chunks: Vec<(usize, usize)> = (0..k)
            .map(|i| (i * n / k, (i + 1) * n / k))
            .filter(|&(s, e)| s < e)
            .collect();
        let (parts, _stats) = pool.run(&chunks, |_ctx, _lane, &(s, e)| {
            let mut part = Vec::with_capacity((e - s) * arity);
            for i in s..e {
                let t = self.tuple(i);
                for &p in perm {
                    part.push(t[p]);
                }
            }
            sort_dedup_rows(&mut part, arity);
            part
        });
        // K-way merge of the sorted chunks, dropping cross-chunk duplicates
        // by comparing against the last emitted row.
        let total: usize = parts.iter().map(Vec::len).sum();
        let mut data: Vec<Value> = Vec::with_capacity(total);
        let mut pos = vec![0usize; parts.len()];
        loop {
            let mut best: Option<usize> = None;
            for (pi, part) in parts.iter().enumerate() {
                if pos[pi] >= part.len() {
                    continue;
                }
                let r = &part[pos[pi]..pos[pi] + arity];
                best = match best {
                    Some(b) if parts[b][pos[b]..pos[b] + arity] <= *r => Some(b),
                    _ => Some(pi),
                };
            }
            let Some(b) = best else { break };
            let r = &parts[b][pos[b]..pos[b] + arity];
            if data.len() < arity || data[data.len() - arity..] != *r {
                data.extend_from_slice(r);
            }
            pos[b] += arity;
        }
        // The merge emits sorted, duplicate-free rows directly, so no
        // normalize() pass runs here; the fingerprint memo starts empty
        // either way.
        Relation {
            arity,
            data,
            fingerprint: std::sync::OnceLock::new(),
        }
    }

    /// Total bytes of the row-major tuple payload (4 bytes per value).
    pub fn payload_bytes(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<Value>()) as u64
    }

    /// The memoized content fingerprint: a 64-bit FNV-1a hash over the
    /// arity and the normalized row buffer.
    ///
    /// Two relations with equal tuples always share a fingerprint, and the
    /// value is stable across processes and Rust versions — it keys both
    /// the in-process trie cache and the persistent store, so a trie saved
    /// by one process is found by another as long as the data is unchanged.
    /// Computed on first use, then free: relations whose fingerprint is
    /// never asked for (e.g. the permuted intermediate a trie build
    /// consumes) never pay the hash.
    pub fn fingerprint(&self) -> u64 {
        *self
            .fingerprint
            .get_or_init(|| content_fingerprint(self.arity, &self.data))
    }

    /// The raw row-major value buffer (length `arity * len`), for
    /// serialization. Reconstruct with [`Relation::from_tuples`] over
    /// `values().chunks_exact(arity)`.
    pub fn values(&self) -> &[Value] {
        &self.data
    }

    fn validate_perm(&self, perm: &[usize]) {
        assert_eq!(
            perm.len(),
            self.arity,
            "permutation length must equal arity"
        );
        let mut seen = vec![false; self.arity];
        for &p in perm {
            assert!(
                p < self.arity && !seen[p],
                "perm must be a permutation of 0..arity"
            );
            seen[p] = true;
        }
    }

    /// Sorts tuples lexicographically and removes duplicates, establishing
    /// the struct invariant.
    fn normalize(&mut self) {
        sort_dedup_rows(&mut self.data, self.arity);
        // Any mutation invalidates the memo; the next fingerprint() call
        // rehashes.
        self.fingerprint = std::sync::OnceLock::new();
    }
}

/// 64-bit FNV-1a over the arity and the normalized row buffer.
///
/// Hand-rolled rather than `DefaultHasher` because the value is persisted:
/// it must be identical across processes, platforms, and Rust releases for
/// store lookups to hit.
fn content_fingerprint(arity: usize, data: &[Value]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut byte = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    };
    for b in (arity as u64).to_le_bytes() {
        byte(b);
    }
    for &v in data {
        for b in v.to_le_bytes() {
            byte(b);
        }
    }
    h
}

/// Sorts row-major `data` lexicographically by row and removes duplicate
/// rows. A strict-ascending pre-check skips all work when the rows are
/// already sorted *and* duplicate-free (the common case for data that went
/// through [`Relation`] construction once); otherwise row **indexes** are
/// sorted instead of a `Vec<&[Value]>` of slice refs, halving the scratch
/// allocation on the `permute` hot path.
fn sort_dedup_rows(data: &mut Vec<Value>, arity: usize) {
    let n = data.len() / arity;
    let already_sorted =
        (1..n).all(|i| data[(i - 1) * arity..i * arity] < data[i * arity..(i + 1) * arity]);
    if already_sorted {
        return;
    }
    debug_assert!(n <= u32::MAX as usize, "row count exceeds u32 index space");
    let mut idx: Vec<u32> = (0..n as u32).collect();
    {
        let d = &*data;
        let row = |i: u32| &d[i as usize * arity..(i as usize + 1) * arity];
        idx.sort_unstable_by(|&a, &b| row(a).cmp(row(b)));
        idx.dedup_by(|a, b| row(*a) == row(*b));
    }
    let mut out = Vec::with_capacity(idx.len() * arity);
    for i in idx {
        out.extend_from_slice(&data[i as usize * arity..(i as usize + 1) * arity]);
    }
    *data = out;
}

impl<'a> IntoIterator for &'a Relation {
    type Item = &'a [Value];
    type IntoIter = std::slice::ChunksExact<'a, Value>;

    fn into_iter(self) -> Self::IntoIter {
        self.data.chunks_exact(self.arity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_arity_is_rejected() {
        assert_eq!(Relation::new(0).unwrap_err(), RelationError::ZeroArity);
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let err = Relation::from_tuples(2, vec![vec![1u32, 2, 3]]).unwrap_err();
        assert_eq!(
            err,
            RelationError::ArityMismatch {
                expected: 2,
                found: 3
            }
        );
    }

    #[test]
    fn tuples_are_sorted_and_deduplicated() {
        let rel = Relation::from_tuples(
            2,
            vec![
                vec![3u32, 1],
                vec![1, 2],
                vec![3, 1],
                vec![1, 1],
                vec![2, 9],
            ],
        )
        .unwrap();
        let rows: Vec<_> = rel.iter().collect();
        assert_eq!(rows, vec![&[1u32, 1][..], &[1, 2], &[2, 9], &[3, 1]]);
        assert_eq!(rel.len(), 4);
        assert!(!rel.is_empty());
    }

    #[test]
    fn from_pairs_matches_from_tuples() {
        let a = Relation::from_pairs(vec![(2, 1), (1, 2), (2, 1)]);
        let b = Relation::from_tuples(2, vec![vec![1u32, 2], vec![2, 1]]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn permute_swaps_columns_and_resorts() {
        let rel = Relation::from_pairs(vec![(1, 9), (2, 3)]);
        let rev = rel.permute(&[1, 0]);
        let rows: Vec<_> = rev.iter().collect();
        assert_eq!(rows, vec![&[3u32, 2][..], &[9, 1]]);
    }

    #[test]
    #[should_panic(expected = "perm must be a permutation")]
    fn permute_rejects_non_permutation() {
        let rel = Relation::from_pairs(vec![(1, 2)]);
        let _ = rel.permute(&[0, 0]);
    }

    #[test]
    fn identity_permutation_is_noop() {
        let rel = Relation::from_pairs(vec![(5, 4), (1, 2), (5, 5)]);
        assert_eq!(rel.permute(&[0, 1]), rel);
    }

    #[test]
    fn payload_bytes_counts_words() {
        let rel = Relation::from_pairs(vec![(1, 2), (3, 4)]);
        assert_eq!(rel.payload_bytes(), 16);
    }

    #[test]
    fn empty_relation_iterates_nothing() {
        let rel = Relation::new(3).unwrap();
        assert_eq!(rel.iter().count(), 0);
        assert_eq!(rel.len(), 0);
        assert!(rel.is_empty());
    }

    #[test]
    fn sorted_input_skips_the_sort_pass() {
        // Already strictly ascending: the pre-check must leave data as-is.
        let mut data = vec![1u32, 1, 1, 2, 2, 9];
        let before = data.clone();
        sort_dedup_rows(&mut data, 2);
        assert_eq!(data, before);
        // Sorted but with a duplicate: the pre-check must NOT fire.
        let mut dup = vec![1u32, 1, 1, 1, 2, 9];
        sort_dedup_rows(&mut dup, 2);
        assert_eq!(dup, vec![1, 1, 2, 9]);
    }

    #[test]
    fn permute_on_matches_permute() {
        use triejax_exec::WorkerPool;
        // Rows chosen so duplicates appear only *after* the column swap and
        // straddle chunk boundaries.
        let tuples: Vec<Vec<Value>> = (0..64u32)
            .map(|i| vec![i % 8, i / 8, i % 3])
            .chain((0..64u32).map(|i| vec![i / 8, i % 8, i % 3]))
            .collect();
        let rel = Relation::from_tuples(3, tuples).unwrap();
        for workers in [1, 2, 3, 7] {
            let pool = WorkerPool::with_workers(workers);
            for perm in [[0, 1, 2], [2, 1, 0], [1, 2, 0]] {
                assert_eq!(rel.permute_on(&perm, &pool), rel.permute(&perm));
            }
        }
        let empty = Relation::new(2).unwrap();
        let pool = WorkerPool::with_workers(4);
        assert_eq!(empty.permute_on(&[1, 0], &pool), empty.permute(&[1, 0]));
    }

    #[test]
    #[should_panic(expected = "perm must be a permutation")]
    fn permute_on_rejects_non_permutation() {
        let rel = Relation::from_pairs(vec![(1, 2)]);
        let _ = rel.permute_on(&[1, 1], &triejax_exec::WorkerPool::with_workers(2));
    }

    #[test]
    fn fingerprint_tracks_content_not_construction_path() {
        // Same tuple set through different construction orders and paths.
        let a = Relation::from_pairs(vec![(2, 1), (1, 2), (2, 1)]);
        let b = Relation::from_tuples(2, vec![vec![1u32, 2], vec![2, 1]]).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Different content, different fingerprint.
        let c = Relation::from_pairs(vec![(1, 2)]);
        assert_ne!(a.fingerprint(), c.fingerprint());
        // Arity participates: {1,2} as one binary tuple vs two unary tuples.
        let bin = Relation::from_tuples(2, vec![vec![1u32, 2]]).unwrap();
        let un = Relation::from_tuples(1, vec![vec![1u32], vec![2]]).unwrap();
        assert_ne!(bin.fingerprint(), un.fingerprint());
        // permute_on (no normalize pass) agrees with permute (normalize).
        let pool = WorkerPool::with_workers(3);
        let rel = Relation::from_tuples(
            2,
            (0..32u32).map(|i| vec![i % 5, i % 7]).collect::<Vec<_>>(),
        )
        .unwrap();
        assert_eq!(
            rel.permute_on(&[1, 0], &pool).fingerprint(),
            rel.permute(&[1, 0]).fingerprint()
        );
    }

    #[test]
    fn fingerprint_is_stable_across_processes() {
        // Golden value: the persisted store format depends on this hash
        // never changing. If this test fails, the store version must bump.
        let rel = Relation::from_pairs(vec![(1, 2), (3, 4)]);
        assert_eq!(rel.fingerprint(), 8_260_193_526_488_586_819);
    }

    #[test]
    fn triple_arity_sorting_is_lexicographic() {
        let rel =
            Relation::from_tuples(3, vec![vec![1u32, 2, 3], vec![1, 2, 1], vec![0, 9, 9]]).unwrap();
        assert_eq!(rel.tuple(0), &[0, 9, 9]);
        assert_eq!(rel.tuple(1), &[1, 2, 1]);
        assert_eq!(rel.tuple(2), &[1, 2, 3]);
    }
}
