use crate::{AddressSpace, ArraySpan, Relation, TrieLayoutError, Value, WORD_BYTES};
use triejax_exec::WorkerPool;

/// A borrowed view of one level of a [`Trie`] in the flat EmptyHeaded-style
/// layout.
///
/// `values` concatenates, parent by parent, the sorted unique values of this
/// attribute. `child_starts` (absent on the deepest level) has one more
/// entry than `values`: node `i`'s children occupy
/// `child_starts[i]..child_starts[i+1]` of the next level's `values` array.
/// This mirrors paper Figure 6, where `Rx = [1,2,3,4]` carries the child
/// ranges array `[0,2,3,4,5]` into `Ry`.
///
/// The view is `Copy` and borrows directly into the trie's single
/// contiguous word buffer — a level never owns its arrays, which is what
/// makes the whole trie relocatable (serialize the buffer, reload it
/// anywhere, and every view is valid again).
#[derive(Debug, Clone, Copy)]
pub struct TrieLevel<'a> {
    values: &'a [Value],
    child_starts: &'a [u32],
    values_span: ArraySpan,
    child_span: ArraySpan,
}

impl<'a> TrieLevel<'a> {
    /// The concatenated sorted value array of this level.
    #[inline]
    pub fn values(self) -> &'a [Value] {
        self.values
    }

    /// The cumulative child-range array (empty on the leaf level).
    #[inline]
    pub fn child_starts(self) -> &'a [u32] {
        self.child_starts
    }

    /// Number of trie nodes on this level.
    #[inline]
    pub fn len(self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the level holds no nodes.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.values.is_empty()
    }

    /// Range of node `i`'s children in the next level's value array.
    ///
    /// # Panics
    ///
    /// Panics if this is the leaf level or `i` is out of bounds.
    #[inline]
    pub fn child_range(self, i: usize) -> (usize, usize) {
        (
            self.child_starts[i] as usize,
            self.child_starts[i + 1] as usize,
        )
    }

    /// Simulated placement of the value array (valid after
    /// [`Trie::assign_addresses`]).
    #[inline]
    pub fn values_span(self) -> ArraySpan {
        self.values_span
    }

    /// Simulated placement of the child-range array.
    #[inline]
    pub fn child_span(self) -> ArraySpan {
        self.child_span
    }
}

/// Placement of one level's arrays inside the flat word buffer, plus the
/// simulated address spans assigned by [`Trie::assign_addresses`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct LevelMeta {
    values_start: usize,
    values_len: usize,
    child_start: usize,
    child_len: usize,
    values_span: ArraySpan,
    child_span: ArraySpan,
}

/// A columnar trie index over a [`Relation`], one level per attribute.
///
/// Built once per (relation, attribute order) pair; join engines walk it
/// through [`crate::TrieCursor`]s, and the TrieJax simulator reads its raw
/// arrays at simulated addresses.
///
/// Physically the trie is **one contiguous `u32` buffer** (per level: the
/// value array, then the child-range array) plus a per-level offset table —
/// no pointers, no per-level ownership. [`Trie::words`] and
/// [`Trie::level_dims`] expose the buffer for serialization and
/// [`Trie::from_parts`] validates and re-adopts it, so a trie can be copied
/// byte-for-byte to disk and back ("relocated") without rebuilding.
///
/// # Example
///
/// ```
/// use triejax_relation::{Relation, Trie};
///
/// // R(x,y) from paper Figure 6.
/// let r = Relation::from_pairs(vec![(1, 1), (1, 2), (2, 2), (3, 5), (4, 4)]);
/// let trie = Trie::build(&r);
/// assert_eq!(trie.level(0).values(), &[1, 2, 3, 4]);
/// assert_eq!(trie.level(0).child_starts(), &[0, 2, 3, 4, 5]);
/// assert_eq!(trie.level(1).values(), &[1, 2, 2, 5, 4]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trie {
    /// The single flat buffer: per level, values then child_starts.
    words: Vec<u32>,
    meta: Vec<LevelMeta>,
    tuple_count: usize,
}

/// One level under construction: owned arrays with fragment-local offsets,
/// packed into the flat buffer once the build completes.
#[derive(Debug, Clone, Default)]
struct LevelFrag {
    values: Vec<Value>,
    child_starts: Vec<u32>,
}

impl Trie {
    /// Builds the trie for `relation` in its stored attribute order.
    ///
    /// Use [`Relation::permute`] first to index a different attribute order.
    pub fn build(relation: &Relation) -> Trie {
        Trie::pack(build_fragment(relation, 0, relation.len()), relation.len())
    }

    /// Builds the trie for `relation` with the row range partitioned across
    /// `pool`, producing a result **byte-identical** to [`Trie::build`].
    ///
    /// Rows are split into contiguous ranges whose boundaries are snapped
    /// forward to the next root-key change, so no root value ever spans two
    /// partitions. Each partition then runs the exact sequential grouping
    /// loop of [`Trie::build`] as an independent pool task, and the
    /// per-partition level fragments are stitched back together by rebasing
    /// `child_starts` offsets. Because the grouping recursion never crosses a
    /// root-key boundary, concatenating the fragments in partition order
    /// reproduces the sequential word buffer exactly — every engine,
    /// the simulator and [`Trie::assign_addresses`] consume the result
    /// unchanged.
    pub fn par_build(relation: &Relation, pool: &WorkerPool) -> Trie {
        let parts = partition_rows(relation, pool.workers());
        if parts.len() <= 1 {
            return Trie::build(relation);
        }
        let (frags, _stats) = pool.run(&parts, |_ctx, _lane, &(s, e)| {
            build_fragment(relation, s, e)
        });
        Trie::pack(stitch_fragments(frags, relation.arity()), relation.len())
    }

    /// Packs per-level owned arrays into the flat single-buffer layout.
    fn pack(levels: Vec<LevelFrag>, tuple_count: usize) -> Trie {
        let total: usize = levels
            .iter()
            .map(|l| l.values.len() + l.child_starts.len())
            .sum();
        let mut words = Vec::with_capacity(total);
        let mut meta = Vec::with_capacity(levels.len());
        for l in &levels {
            let values_start = words.len();
            words.extend_from_slice(&l.values);
            let child_start = words.len();
            words.extend_from_slice(&l.child_starts);
            meta.push(LevelMeta {
                values_start,
                values_len: l.values.len(),
                child_start,
                child_len: l.child_starts.len(),
                ..LevelMeta::default()
            });
        }
        Trie {
            words,
            meta,
            tuple_count,
        }
    }

    /// Re-adopts a previously exported flat buffer (see [`Trie::words`] /
    /// [`Trie::level_dims`]) after validating its structure: every
    /// child-range array must be exactly one entry longer than its value
    /// array, start at `0`, be monotone, and end exactly at the next
    /// level's width. The validation is what makes deserialized tries safe
    /// to walk — a corrupted offset is rejected here instead of panicking
    /// (or reading garbage) deep inside a cursor.
    ///
    /// Reconstructing with the dims returned by [`Trie::level_dims`] and
    /// the buffer returned by [`Trie::words`] yields a trie equal to the
    /// original (simulated address spans reset to unassigned).
    ///
    /// # Errors
    ///
    /// Returns a [`TrieLayoutError`] describing the first structural
    /// violation found.
    pub fn from_parts(
        words: Vec<u32>,
        dims: &[(usize, usize)],
        tuple_count: usize,
    ) -> Result<Trie, TrieLayoutError> {
        let expected: usize = dims.iter().map(|&(v, c)| v + c).sum();
        if expected != words.len() {
            return Err(TrieLayoutError::WordCount {
                expected,
                found: words.len(),
            });
        }
        let mut meta = Vec::with_capacity(dims.len());
        let mut offset = 0usize;
        for (l, &(values_len, child_len)) in dims.iter().enumerate() {
            let values_start = offset;
            let child_start = offset + values_len;
            offset = child_start + child_len;
            let leaf = l + 1 == dims.len();
            if (leaf && child_len != 0) || (!leaf && child_len != values_len + 1) {
                return Err(TrieLayoutError::ChildCount {
                    level: l,
                    values: values_len,
                    child_entries: child_len,
                });
            }
            if !leaf {
                let starts = &words[child_start..child_start + child_len];
                let next_len = dims[l + 1].0;
                if starts[0] != 0 {
                    return Err(TrieLayoutError::Offset {
                        level: l,
                        index: 0,
                        offset: starts[0],
                        limit: 0,
                    });
                }
                for (i, w) in starts.windows(2).enumerate() {
                    if w[1] < w[0] || w[1] as usize > next_len {
                        return Err(TrieLayoutError::Offset {
                            level: l,
                            index: i + 1,
                            offset: w[1],
                            limit: next_len,
                        });
                    }
                }
                if starts[child_len - 1] as usize != next_len {
                    return Err(TrieLayoutError::Offset {
                        level: l,
                        index: child_len - 1,
                        offset: starts[child_len - 1],
                        limit: next_len,
                    });
                }
            }
            meta.push(LevelMeta {
                values_start,
                values_len,
                child_start,
                child_len,
                ..LevelMeta::default()
            });
        }
        let leaf_len = dims.last().map_or(0, |&(v, _)| v);
        if tuple_count != leaf_len {
            return Err(TrieLayoutError::TupleCount {
                expected: leaf_len,
                found: tuple_count,
            });
        }
        Ok(Trie {
            words,
            meta,
            tuple_count,
        })
    }

    /// Number of attributes (trie depth).
    #[inline]
    pub fn arity(&self) -> usize {
        self.meta.len()
    }

    /// Number of tuples (root-to-leaf paths).
    #[inline]
    pub fn tuple_count(&self) -> usize {
        self.tuple_count
    }

    /// The `i`-th level, as a borrowed view into the flat buffer.
    ///
    /// Constructing the view is a meta lookup plus two bounds-checked
    /// slicings of the flat buffer — cheap, but not free in a per-probe
    /// loop. [`TrieCursor`](crate::TrieCursor) therefore caches one view
    /// per depth at construction instead of calling this per operation.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.arity()`.
    #[inline]
    pub fn level(&self, i: usize) -> TrieLevel<'_> {
        let m = &self.meta[i];
        TrieLevel {
            values: &self.words[m.values_start..m.values_start + m.values_len],
            child_starts: &self.words[m.child_start..m.child_start + m.child_len],
            values_span: m.values_span,
            child_span: m.child_span,
        }
    }

    /// The single contiguous word buffer backing every level: per level,
    /// the value array immediately followed by the child-range array. Pair
    /// with [`Trie::level_dims`] to serialize, and [`Trie::from_parts`] to
    /// reload.
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Per-level `(value count, child-range entry count)` pairs, root
    /// first — the offset table that, together with [`Trie::words`], fully
    /// describes the flat layout.
    pub fn level_dims(&self) -> Vec<(usize, usize)> {
        self.meta
            .iter()
            .map(|m| (m.values_len, m.child_len))
            .collect()
    }

    /// Total index footprint in bytes (values plus child-range words).
    pub fn bytes(&self) -> u64 {
        self.words.len() as u64 * WORD_BYTES
    }

    /// Places every level's arrays in the simulated address space.
    ///
    /// Must be called before a cycle-level simulator derives addresses from
    /// [`TrieLevel::values_span`] / [`TrieLevel::child_span`].
    pub fn assign_addresses(&mut self, asp: &mut AddressSpace) {
        for m in &mut self.meta {
            m.values_span = asp.alloc(m.values_len as u64 * WORD_BYTES);
            m.child_span = asp.alloc(m.child_len as u64 * WORD_BYTES);
        }
    }

    /// Reconstructs every tuple by depth-first traversal (mainly for tests:
    /// the result must equal the source relation's tuples).
    pub fn enumerate(&self) -> Vec<Vec<Value>> {
        let mut out = Vec::with_capacity(self.tuple_count);
        if self.meta.is_empty() || self.level(0).is_empty() {
            return out;
        }
        let mut path = Vec::with_capacity(self.arity());
        self.walk(0, 0, self.level(0).len(), &mut path, &mut out);
        out
    }

    fn walk(
        &self,
        level: usize,
        lo: usize,
        hi: usize,
        path: &mut Vec<Value>,
        out: &mut Vec<Vec<Value>>,
    ) {
        let l = self.level(level);
        for i in lo..hi {
            path.push(l.values()[i]);
            if level + 1 == self.arity() {
                out.push(path.clone());
            } else {
                let (s, e) = l.child_range(i);
                self.walk(level + 1, s, e, path, out);
            }
            path.pop();
        }
    }
}

impl From<&Relation> for Trie {
    fn from(relation: &Relation) -> Self {
        Trie::build(relation)
    }
}

/// Runs the sequential grouping loop over the row range `lo..hi`, producing
/// this fragment's level arrays with *fragment-local* `child_starts`
/// offsets. [`Trie::build`] is exactly `build_fragment(rel, 0, rel.len())`
/// packed into the flat buffer, which is what makes the partition/stitch
/// scheme byte-identical by construction: both paths execute the same loop
/// over the same row groups.
fn build_fragment(relation: &Relation, lo: usize, hi: usize) -> Vec<LevelFrag> {
    let arity = relation.arity();
    let nrows = hi - lo;
    let mut levels: Vec<LevelFrag> = vec![LevelFrag::default(); arity];

    // Each group is the row range below one node of the previous level;
    // the pseudo-root owns all rows of the fragment.
    let mut groups: Vec<(usize, usize)> = vec![(lo, hi)];
    for level in 0..arity {
        // Each level holds at most one node per source row; reserving
        // up front keeps the build free of reallocation churn.
        let mut values = Vec::with_capacity(nrows);
        let mut next_groups = Vec::with_capacity(nrows);
        let mut counts = Vec::with_capacity(groups.len());
        for &(s, e) in &groups {
            let before = values.len();
            let mut i = s;
            while i < e {
                let v = relation.tuple(i)[level];
                let mut j = i + 1;
                while j < e && relation.tuple(j)[level] == v {
                    j += 1;
                }
                values.push(v);
                next_groups.push((i, j));
                i = j;
            }
            counts.push((values.len() - before) as u32);
        }
        if level > 0 {
            let mut starts = Vec::with_capacity(counts.len() + 1);
            let mut acc = 0u32;
            starts.push(0);
            for c in counts {
                acc += c;
                starts.push(acc);
            }
            levels[level - 1].child_starts = starts;
        }
        // Non-leaf levels hold only the distinct values, typically far
        // fewer than nrows: return the over-reservation rather than
        // retaining it until the fragment is packed.
        values.shrink_to_fit();
        levels[level].values = values;
        groups = next_groups;
    }
    levels
}

/// Splits `0..relation.len()` into at most `parts` contiguous row ranges
/// whose boundaries fall on root-key changes. Every range is non-empty; a
/// range may be larger than its even share when one root value dominates
/// (the boundary is snapped *forward* past the run).
fn partition_rows(relation: &Relation, parts: usize) -> Vec<(usize, usize)> {
    let nrows = relation.len();
    if nrows == 0 || parts <= 1 {
        return vec![(0, nrows)];
    }
    let mut bounds = vec![0usize];
    for k in 1..parts {
        let mut b = k * nrows / parts;
        if b <= *bounds.last().expect("bounds is never empty") {
            continue;
        }
        while b < nrows && relation.tuple(b)[0] == relation.tuple(b - 1)[0] {
            b += 1;
        }
        if b < nrows {
            bounds.push(b);
        }
    }
    bounds.push(nrows);
    bounds.windows(2).map(|w| (w[0], w[1])).collect()
}

/// Concatenates per-partition level fragments in partition order, rebasing
/// each fragment's `child_starts` by the number of next-level values already
/// emitted (a fragment's last cumulative entry *is* its next-level value
/// count, so the running base is simply the last element stitched so far).
fn stitch_fragments(frags: Vec<Vec<LevelFrag>>, arity: usize) -> Vec<LevelFrag> {
    let mut levels: Vec<LevelFrag> = vec![LevelFrag::default(); arity];
    for (l, out) in levels.iter_mut().enumerate() {
        let total: usize = frags.iter().map(|f| f[l].values.len()).sum();
        let mut values = Vec::with_capacity(total);
        let mut starts: Vec<u32> = Vec::new();
        for f in &frags {
            values.extend_from_slice(&f[l].values);
            if l + 1 < arity {
                if starts.is_empty() {
                    starts.extend_from_slice(&f[l].child_starts);
                } else {
                    let base = *starts.last().expect("non-empty starts");
                    starts.extend(f[l].child_starts.iter().skip(1).map(|&c| base + c));
                }
            }
        }
        out.values = values;
        out.child_starts = starts;
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure6_r() -> Relation {
        Relation::from_pairs(vec![(1, 1), (1, 2), (2, 2), (3, 5), (4, 4)])
    }

    fn figure6_s() -> Relation {
        Relation::from_pairs(vec![(1, 1), (1, 2), (1, 3), (2, 5), (2, 7)])
    }

    #[test]
    fn figure6_layout_r() {
        let trie = Trie::build(&figure6_r());
        assert_eq!(trie.arity(), 2);
        assert_eq!(trie.level(0).values(), &[1, 2, 3, 4]);
        assert_eq!(trie.level(0).child_starts(), &[0, 2, 3, 4, 5]);
        assert_eq!(trie.level(1).values(), &[1, 2, 2, 5, 4]);
        assert!(trie.level(1).child_starts().is_empty());
    }

    #[test]
    fn figure6_layout_s() {
        let trie = Trie::build(&figure6_s());
        assert_eq!(trie.level(0).values(), &[1, 2]);
        assert_eq!(trie.level(0).child_starts(), &[0, 3, 5]);
        assert_eq!(trie.level(1).values(), &[1, 2, 3, 5, 7]);
    }

    #[test]
    fn flat_buffer_concatenates_levels_in_order() {
        let trie = Trie::build(&figure6_r());
        // Level 0 values, level 0 child_starts, level 1 values.
        assert_eq!(trie.words(), &[1, 2, 3, 4, 0, 2, 3, 4, 5, 1, 2, 2, 5, 4]);
        assert_eq!(trie.level_dims(), vec![(4, 5), (5, 0)]);
    }

    #[test]
    fn from_parts_round_trips_the_flat_buffer() {
        for rel in [figure6_r(), figure6_s()] {
            let trie = Trie::build(&rel);
            let rebuilt = Trie::from_parts(
                trie.words().to_vec(),
                &trie.level_dims(),
                trie.tuple_count(),
            )
            .expect("exported parts are valid");
            assert_eq!(rebuilt, trie, "relocation must be lossless");
            assert_eq!(rebuilt.enumerate(), trie.enumerate());
        }
        // Empty tries relocate too.
        let empty = Trie::build(&Relation::new(2).unwrap());
        let rebuilt = Trie::from_parts(empty.words().to_vec(), &empty.level_dims(), 0).unwrap();
        assert_eq!(rebuilt, empty);
    }

    #[test]
    fn from_parts_rejects_corrupted_layouts() {
        let trie = Trie::build(&figure6_r());
        let dims = trie.level_dims();
        let words = trie.words().to_vec();
        // Wrong total word count.
        let mut short = words.clone();
        short.pop();
        assert!(matches!(
            Trie::from_parts(short, &dims, trie.tuple_count()),
            Err(TrieLayoutError::WordCount { .. })
        ));
        // Child array not values + 1 entries long.
        assert!(matches!(
            Trie::from_parts(words.clone(), &[(4, 4), (6, 0)], trie.tuple_count()),
            Err(TrieLayoutError::ChildCount { level: 0, .. })
        ));
        // Oversize child offset: the last start runs past the leaf level.
        let mut oversize = words.clone();
        oversize[8] = 99; // child_starts[4] of level 0
        assert!(matches!(
            Trie::from_parts(oversize, &dims, trie.tuple_count()),
            Err(TrieLayoutError::Offset {
                level: 0,
                offset: 99,
                ..
            })
        ));
        // Non-monotone offsets.
        let mut backwards = words.clone();
        backwards[6] = 1; // starts 0,2,1,...
        assert!(matches!(
            Trie::from_parts(backwards, &dims, trie.tuple_count()),
            Err(TrieLayoutError::Offset { level: 0, .. })
        ));
        // First offset not zero.
        let mut nonzero = words.clone();
        nonzero[4] = 1;
        assert!(matches!(
            Trie::from_parts(nonzero, &dims, trie.tuple_count()),
            Err(TrieLayoutError::Offset {
                level: 0,
                index: 0,
                ..
            })
        ));
        // Tuple count disagreeing with the leaf width.
        assert!(matches!(
            Trie::from_parts(words, &dims, 99),
            Err(TrieLayoutError::TupleCount {
                expected: 5,
                found: 99
            })
        ));
    }

    #[test]
    fn child_range_indexes_next_level() {
        let trie = Trie::build(&figure6_r());
        assert_eq!(trie.level(0).child_range(0), (0, 2));
        assert_eq!(trie.level(0).child_range(3), (4, 5));
        let (s, e) = trie.level(0).child_range(0);
        assert_eq!(&trie.level(1).values()[s..e], &[1, 2]);
    }

    #[test]
    fn enumerate_round_trips() {
        let rel = Relation::from_tuples(
            3,
            vec![
                vec![1u32, 2, 3],
                vec![1, 2, 4],
                vec![1, 5, 1],
                vec![2, 1, 1],
                vec![9, 9, 9],
            ],
        )
        .unwrap();
        let trie = Trie::build(&rel);
        assert_eq!(trie.tuple_count(), rel.len());
        let tuples = trie.enumerate();
        let expect: Vec<Vec<Value>> = rel.iter().map(|t| t.to_vec()).collect();
        assert_eq!(tuples, expect);
    }

    #[test]
    fn empty_relation_builds_empty_trie() {
        let rel = Relation::new(2).unwrap();
        let trie = Trie::build(&rel);
        assert_eq!(trie.tuple_count(), 0);
        assert!(trie.level(0).is_empty());
        assert!(trie.enumerate().is_empty());
    }

    #[test]
    fn unary_relation_trie() {
        let rel = Relation::from_tuples(1, vec![vec![4u32], vec![1], vec![4]]).unwrap();
        let trie = Trie::build(&rel);
        assert_eq!(trie.level(0).values(), &[1, 4]);
        assert_eq!(trie.enumerate(), vec![vec![1], vec![4]]);
    }

    #[test]
    fn assign_addresses_gives_disjoint_spans() {
        let mut trie = Trie::build(&figure6_r());
        let mut asp = AddressSpace::new();
        trie.assign_addresses(&mut asp);
        let v0 = trie.level(0).values_span();
        let c0 = trie.level(0).child_span();
        let v1 = trie.level(1).values_span();
        assert_eq!(v0.bytes, 16);
        assert_eq!(c0.bytes, 20);
        assert_eq!(v1.bytes, 20);
        assert!(v0.base + v0.bytes <= c0.base);
        assert!(c0.base + c0.bytes <= v1.base);
    }

    #[test]
    fn bytes_counts_all_words() {
        let trie = Trie::build(&figure6_r());
        // 4 + 5 values, 5 child starts = 14 words.
        assert_eq!(trie.bytes(), 14 * 4);
    }

    #[test]
    fn partition_boundaries_fall_on_root_key_changes() {
        // Root value 1 owns 6 of 8 rows; no boundary may land inside its run.
        let rel = Relation::from_tuples(
            2,
            (0..6u32)
                .map(|y| vec![1u32, y])
                .chain([vec![2, 0], vec![3, 0]])
                .collect::<Vec<_>>(),
        )
        .unwrap();
        for parts in 1..=8 {
            let ranges = partition_rows(&rel, parts);
            assert_eq!(ranges[0].0, 0);
            assert_eq!(ranges.last().unwrap().1, rel.len());
            for w in ranges.windows(2) {
                assert_eq!(w[0].1, w[1].0, "ranges must be contiguous");
            }
            for &(s, e) in &ranges {
                assert!(s < e, "ranges must be non-empty");
                if s > 0 {
                    assert_ne!(
                        rel.tuple(s - 1)[0],
                        rel.tuple(s)[0],
                        "boundary inside a root-key run"
                    );
                }
            }
        }
    }

    #[test]
    fn par_build_matches_build_on_figure6() {
        for workers in [1, 2, 3, 7] {
            let pool = WorkerPool::with_workers(workers);
            assert_eq!(
                Trie::par_build(&figure6_r(), &pool),
                Trie::build(&figure6_r())
            );
            assert_eq!(
                Trie::par_build(&figure6_s(), &pool),
                Trie::build(&figure6_s())
            );
        }
    }

    #[test]
    fn par_build_handles_empty_and_single_row() {
        let pool = WorkerPool::with_workers(4);
        let empty = Relation::new(3).unwrap();
        assert_eq!(Trie::par_build(&empty, &pool), Trie::build(&empty));
        let one = Relation::from_tuples(2, vec![vec![7u32, 9]]).unwrap();
        assert_eq!(Trie::par_build(&one, &pool), Trie::build(&one));
    }

    #[test]
    fn par_build_single_root_value_collapses_to_one_partition() {
        let rel =
            Relation::from_tuples(2, (0..100u32).map(|y| vec![5, y]).collect::<Vec<_>>()).unwrap();
        let pool = WorkerPool::with_workers(4);
        assert_eq!(partition_rows(&rel, 4).len(), 1);
        assert_eq!(Trie::par_build(&rel, &pool), Trie::build(&rel));
    }
}
