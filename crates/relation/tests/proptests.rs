//! Property tests for the relation/trie substrate.

use proptest::prelude::*;
use triejax_exec::WorkerPool;
use triejax_relation::{AccessCounter, Relation, Trie, TrieCursor, Value};

fn arb_tuples(
    arity: usize,
    max_len: usize,
    domain: Value,
) -> impl Strategy<Value = Vec<Vec<Value>>> {
    prop::collection::vec(prop::collection::vec(0..domain, arity), 0..max_len)
}

proptest! {
    /// Trie enumeration reproduces exactly the sorted deduplicated input.
    #[test]
    fn trie_round_trip(tuples in arb_tuples(3, 60, 16)) {
        let rel = Relation::from_tuples(3, tuples).unwrap();
        let trie = Trie::build(&rel);
        let out = trie.enumerate();
        let expect: Vec<Vec<Value>> = rel.iter().map(|t| t.to_vec()).collect();
        prop_assert_eq!(out, expect);
        prop_assert_eq!(trie.tuple_count(), rel.len());
    }

    /// Every trie level stores sorted runs within each parent's child range.
    #[test]
    fn trie_sibling_runs_are_sorted(tuples in arb_tuples(2, 80, 12)) {
        let rel = Relation::from_tuples(2, tuples).unwrap();
        let trie = Trie::build(&rel);
        let l0 = trie.level(0);
        prop_assert!(l0.values().windows(2).all(|w| w[0] < w[1]));
        for i in 0..l0.len() {
            let (s, e) = l0.child_range(i);
            let kids = &trie.level(1).values()[s..e];
            prop_assert!(!kids.is_empty());
            prop_assert!(kids.windows(2).all(|w| w[0] < w[1]));
        }
    }

    /// `seek` agrees with a linear scan for the lowest upper bound.
    #[test]
    fn seek_matches_linear_scan(mut vals in prop::collection::btree_set(0u32..200, 1..50), probe in 0u32..220) {
        let tuples: Vec<Vec<Value>> = vals.iter().map(|&v| vec![v]).collect();
        let rel = Relation::from_tuples(1, tuples).unwrap();
        let trie = Trie::build(&rel);
        let mut cur = TrieCursor::new(&trie);
        let mut c = AccessCounter::default();
        cur.open(&mut c);
        let found = cur.seek(probe, &mut c);
        let expect = vals.iter().copied().find(|&v| v >= probe);
        match expect {
            Some(v) => {
                prop_assert!(found);
                prop_assert_eq!(cur.key(), v);
            }
            None => prop_assert!(!found),
        }
        // Keep the borrow checker quiet about `vals` mutability lint.
        vals.clear();
    }

    /// Parallel trie construction is byte-identical to the sequential
    /// build — same `Trie`, field for field — across pool sizes (1, 2,
    /// 7), arities 1–4, and both uniform and power-law root-key skew
    /// (squaring a uniform draw concentrates mass near zero, so
    /// partition boundaries land mid-root-group and must snap forward).
    /// Empty and single-row relations ride along via the 0-length end of
    /// the size range.
    #[test]
    fn par_build_matches_build(
        arity in 1usize..=4,
        raw in arb_tuples(4, 80, 24),
        skew in 0u32..2,
    ) {
        let tuples: Vec<Vec<Value>> = raw
            .into_iter()
            .map(|mut t| {
                t.truncate(arity);
                if skew == 1 {
                    t[0] = (t[0] * t[0]) / 24; // power-law-ish pile-up at small roots
                }
                t
            })
            .collect();
        let rel = Relation::from_tuples(arity, tuples).unwrap();
        let seq = Trie::build(&rel);
        for workers in [1usize, 2, 7] {
            let pool = WorkerPool::with_workers(workers);
            let par = Trie::par_build(&rel, &pool);
            prop_assert_eq!(&par, &seq, "pool of {} diverged", workers);
        }
    }

    /// Pool-parallel permute+normalize produces exactly the sequential
    /// relation: same sort, same dedup, any worker count.
    #[test]
    fn permute_on_matches_permute_under_any_pool(tuples in arb_tuples(3, 70, 8)) {
        let rel = Relation::from_tuples(3, tuples).unwrap();
        let perm = [2usize, 0, 1];
        let seq = rel.permute(&perm);
        for workers in [1usize, 2, 7] {
            let pool = WorkerPool::with_workers(workers);
            prop_assert_eq!(&rel.permute_on(&perm, &pool), &seq);
        }
    }

    /// Permuting twice with inverse permutations round-trips.
    #[test]
    fn permute_round_trip(tuples in arb_tuples(3, 40, 10)) {
        let rel = Relation::from_tuples(3, tuples).unwrap();
        let perm = [2usize, 0, 1];
        let inv = [1usize, 2, 0];
        prop_assert_eq!(rel.permute(&perm).permute(&inv), rel);
    }

    /// Cursor traversal visits tuples in lexicographic order and counts
    /// at least one access per visited node.
    #[test]
    fn full_scan_is_ordered(tuples in arb_tuples(2, 60, 10)) {
        let rel = Relation::from_tuples(2, tuples).unwrap();
        let trie = Trie::build(&rel);
        let mut cur = TrieCursor::new(&trie);
        let mut c = AccessCounter::default();
        let mut seen: Vec<(Value, Value)> = Vec::new();
        if cur.open(&mut c) {
            loop {
                let x = cur.key();
                cur.open(&mut c);
                loop {
                    seen.push((x, cur.key()));
                    if !cur.next(&mut c) { break; }
                }
                cur.up();
                if !cur.next(&mut c) { break; }
            }
        }
        let expect: Vec<(Value, Value)> = rel.iter().map(|t| (t[0], t[1])).collect();
        prop_assert_eq!(&seen, &expect);
        if !seen.is_empty() {
            prop_assert!(c.index_reads as usize >= seen.len());
        }
    }
}
