use std::error::Error;
use std::fmt;

/// Errors produced while reading or writing a stored catalog.
///
/// Every way a store file can be wrong maps to a distinct variant so
/// operators can tell a half-written file ([`StoreError::Truncated`]) from
/// bit rot ([`StoreError::ChecksumMismatch`]) from a version skew
/// ([`StoreError::UnsupportedVersion`]) from an attack on the offset table
/// ([`StoreError::OversizeOffset`]). Corrupt input is always rejected with
/// one of these — never a panic, never a silently-garbage catalog.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// The underlying file could not be read or written.
    Io(std::io::Error),
    /// The buffer ended before a declared field or array was complete.
    Truncated {
        /// Bytes the next field required.
        needed: usize,
        /// Bytes actually remaining.
        available: usize,
    },
    /// The file does not start with the `TJXSTORE` magic bytes.
    BadMagic,
    /// The file declares a format version this build cannot read.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Newest version this build understands.
        supported: u32,
    },
    /// The payload hash does not match the checksum in the header.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum recomputed over the payload.
        found: u64,
    },
    /// A stored trie's child-range table points outside its level arrays.
    OversizeOffset {
        /// Trie level whose child-range array is inconsistent.
        level: usize,
        /// Index of the offending entry.
        index: usize,
        /// The offending offset value.
        offset: u32,
        /// The maximum admissible offset.
        limit: usize,
    },
    /// The payload is structurally inconsistent in some other way
    /// (non-UTF-8 name, row buffer not divisible by arity, level-count
    /// mismatch, ...).
    Malformed {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::Truncated { needed, available } => write!(
                f,
                "store file truncated: next field needs {needed} bytes, {available} remain"
            ),
            StoreError::BadMagic => write!(f, "not a TrieJax store file (bad magic)"),
            StoreError::UnsupportedVersion { found, supported } => write!(
                f,
                "store format version {found} is not supported (this build reads up to \
                 version {supported})"
            ),
            StoreError::ChecksumMismatch { expected, found } => write!(
                f,
                "store payload checksum {found:#018x} does not match header {expected:#018x}"
            ),
            StoreError::OversizeOffset {
                level,
                index,
                offset,
                limit,
            } => write!(
                f,
                "stored trie level {level} child-range entry {index} is {offset}, \
                 outside 0..={limit}"
            ),
            StoreError::Malformed { detail } => write!(f, "malformed store payload: {detail}"),
        }
    }
}

impl Error for StoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_distinguishes_every_variant() {
        let msgs = [
            StoreError::Truncated {
                needed: 8,
                available: 3,
            }
            .to_string(),
            StoreError::BadMagic.to_string(),
            StoreError::UnsupportedVersion {
                found: 9,
                supported: 1,
            }
            .to_string(),
            StoreError::ChecksumMismatch {
                expected: 1,
                found: 2,
            }
            .to_string(),
            StoreError::OversizeOffset {
                level: 0,
                index: 4,
                offset: 99,
                limit: 5,
            }
            .to_string(),
            StoreError::Malformed { detail: "x".into() }.to_string(),
        ];
        for (i, a) in msgs.iter().enumerate() {
            for b in msgs.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StoreError>();
    }
}
