//! Byte-level primitives of the store format: a little-endian writer and a
//! bounds-checked reader over a borrowed payload.
//!
//! Every read validates the remaining length *before* touching (or
//! allocating for) the data, so a truncated or count-inflated file fails
//! with [`StoreError::Truncated`] instead of panicking or ballooning memory
//! on a crafted length field.

use crate::StoreError;

/// 64-bit FNV-1a over a byte slice — the store's checksum function.
///
/// Chosen because it is trivially dependency-free and stable across
/// platforms; the checksum guards against torn writes and bit rot, not
/// adversaries.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Append-only little-endian payload writer.
#[derive(Debug, Default)]
pub(crate) struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn new() -> Self {
        Writer::default()
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Writes a `u32` array as raw little-endian words (no length prefix;
    /// callers write the count themselves first).
    pub(crate) fn words(&mut self, v: &[u32]) {
        for &w in v {
            self.buf.extend_from_slice(&w.to_le_bytes());
        }
    }

    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked little-endian reader over a borrowed payload.
#[derive(Debug)]
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub(crate) fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u64(&mut self) -> Result<u64, StoreError> {
        let s = self.take(8)?;
        Ok(u64::from_le_bytes(s.try_into().expect("8-byte slice")))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, StoreError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes(s.try_into().expect("4-byte slice")))
    }

    /// Reads a `u64` that will be used as an in-memory count or index,
    /// rejecting values that cannot fit a `usize`.
    pub(crate) fn count(&mut self) -> Result<usize, StoreError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| StoreError::Malformed {
            detail: format!("count {v} exceeds the address space"),
        })
    }

    /// Reads a length-prefixed UTF-8 string.
    pub(crate) fn string(&mut self) -> Result<String, StoreError> {
        let len = self.count()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| StoreError::Malformed {
            detail: "name is not valid UTF-8".into(),
        })
    }

    /// Reads `n` raw little-endian `u32` words. The byte length is checked
    /// (with overflow-safe arithmetic) before the vector is allocated, so an
    /// inflated count cannot trigger an outsized allocation.
    pub(crate) fn words(&mut self, n: usize) -> Result<Vec<u32>, StoreError> {
        let nbytes = n.checked_mul(4).ok_or(StoreError::Truncated {
            needed: usize::MAX,
            available: self.remaining(),
        })?;
        let s = self.take(nbytes)?;
        Ok(s.chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_primitives() {
        let mut w = Writer::new();
        w.u64(42);
        w.u64(7);
        w.bytes(b"abc");
        w.words(&[1, u32::MAX, 0]);
        let bytes = w.into_bytes();

        let mut r = Reader::new(&bytes);
        assert_eq!(r.u64().unwrap(), 42);
        assert_eq!(r.count().unwrap(), 7);
        let mut r2 = Reader::new(&bytes[16..]);
        assert_eq!(&bytes[16..19], b"abc");
        r2.take(3).unwrap();
        assert_eq!(r2.words(3).unwrap(), vec![1, u32::MAX, 0]);
        assert!(r2.is_exhausted());
    }

    #[test]
    fn truncated_reads_fail_without_allocating() {
        let mut r = Reader::new(&[1, 2, 3]);
        assert!(matches!(
            r.u64(),
            Err(StoreError::Truncated {
                needed: 8,
                available: 3
            })
        ));
        // A count claiming billions of words must fail the length check,
        // not attempt the allocation.
        let mut r = Reader::new(&[0; 8]);
        assert!(matches!(
            r.words(1 << 40),
            Err(StoreError::Truncated { .. })
        ));
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
