//! Persistent, relocatable catalog of relations and pre-built tries.
//!
//! TrieJax's premise is "build the trie index once, then let the hardware
//! rip through joins" — this crate makes the *once* literal across process
//! boundaries. A [`StoredCatalog`] serializes base relations together with
//! their built [`Trie`] indexes into a single versioned, checksummed file.
//! A cold process calls [`StoredCatalog::open`] and can serve queries in
//! O(bytes-read) with **zero** trie builds: each stored trie is keyed by the
//! same `(name, content fingerprint, permutation)` scheme the in-process
//! trie cache uses, so after the underlying data changes, stale entries are
//! simply unreachable — there is no invalidation protocol.
//!
//! Relocation is what makes this cheap: a [`Trie`] is one contiguous `u32`
//! buffer plus a per-level offset table ([`Trie::words`] /
//! [`Trie::level_dims`]), so saving is a buffer copy and opening is a
//! validated buffer adoption ([`Trie::from_parts`]) — no pointer fix-ups,
//! no rebuild.
//!
//! # File format (versions 1 and 2)
//!
//! All integers little-endian.
//!
//! ```text
//! magic        8 bytes   "TJXSTORE"
//! version      u32
//! payload_len  u64
//! checksum     u64       FNV-1a 64 over the payload bytes
//! payload:
//!   rel_count  u64
//!   per relation:
//!     name_len u64, name (UTF-8), arity u64, word_count u64, words u32[]
//!   trie_count u64
//!   per trie:
//!     name_len u64, name (UTF-8), fingerprint u64,
//!     perm_len u64, perm u64[], tuple_count u64,
//!     level_count u64, (values_len u64, child_len u64) per level,
//!     word_count u64, words u32[]
//!   delta_count u64                                    -- version 2 only
//!   per delta:
//!     name_len u64, name (UTF-8), arity u64,
//!     insert_word_count u64, words u32[],
//!     tombstone_word_count u64, words u32[]
//! ```
//!
//! Version 2 appends the pending [`RelationDelta`]s of a mutable session
//! (`triejax-join`'s `Session::apply`) so a snapshot taken mid-mutation
//! round-trips exactly. A catalog with **no** deltas still serializes as
//! version 1 — byte-for-byte what earlier builds wrote — so frozen
//! snapshots stay byte-stable across this format revision, and version-1
//! files remain readable forever.
//!
//! Every length is validated against the remaining bytes before any
//! allocation, every trie's offset table is structurally validated by
//! [`Trie::from_parts`], and every delta's insert/tombstone sets are
//! checked for equal arity and disjointness at parse time; corrupt input
//! yields a typed [`StoreError`], never a panic or a silently-wrong
//! catalog.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod format;

pub use error::StoreError;

use format::{fnv1a64, Reader, Writer};
use std::path::Path;
use std::sync::Arc;
use triejax_relation::{delta, Relation, RelationDelta, Trie, TrieLayoutError};

/// The magic bytes opening every store file.
const MAGIC: &[u8; 8] = b"TJXSTORE";

/// The newest store format version this build writes (version-1 files are
/// still read; a catalog without deltas still *writes* version 1, keeping
/// frozen snapshots byte-stable).
pub const FORMAT_VERSION: u32 = 2;

/// The oldest store format version this build reads.
const MIN_FORMAT_VERSION: u32 = 1;

/// One pre-built trie in a stored catalog, addressed by the same
/// `(name, fingerprint, perm)` triple the in-process trie cache uses.
#[derive(Debug, Clone)]
pub struct StoredTrie {
    /// Name of the relation the trie indexes.
    pub name: String,
    /// Content fingerprint of the relation *at build time*
    /// ([`Relation::fingerprint`]). If the relation changes, lookups
    /// compute a different fingerprint and this entry is never found.
    pub fingerprint: u64,
    /// The attribute permutation the trie was built under.
    pub perm: Vec<usize>,
    /// The trie itself, shared so openers can hand it straight to a cache.
    pub trie: Arc<Trie>,
}

/// A serializable catalog: named base relations plus the tries built over
/// them.
///
/// # Example
///
/// ```no_run
/// use std::sync::Arc;
/// use triejax_relation::{Relation, Trie};
/// use triejax_store::StoredCatalog;
///
/// let edges = Relation::from_pairs(vec![(1, 2), (2, 3), (3, 1)]);
/// let trie = Arc::new(Trie::build(&edges));
/// let mut cat = StoredCatalog::new();
/// cat.insert_trie("edge", edges.fingerprint(), vec![0, 1], trie);
/// cat.insert_relation("edge", edges);
/// cat.save("graph.tjx")?;
///
/// // ... later, in a cold process:
/// let reopened = StoredCatalog::open("graph.tjx")?;
/// assert_eq!(reopened.tries().len(), 1); // zero Trie::build calls
/// # Ok::<(), triejax_store::StoreError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct StoredCatalog {
    relations: Vec<(String, Relation)>,
    tries: Vec<StoredTrie>,
    deltas: Vec<(String, RelationDelta)>,
}

impl StoredCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        StoredCatalog::default()
    }

    /// Adds a named base relation.
    pub fn insert_relation(&mut self, name: impl Into<String>, relation: Relation) {
        self.relations.push((name.into(), relation));
    }

    /// Adds a pre-built trie under its cache key.
    pub fn insert_trie(
        &mut self,
        name: impl Into<String>,
        fingerprint: u64,
        perm: Vec<usize>,
        trie: Arc<Trie>,
    ) {
        self.tries.push(StoredTrie {
            name: name.into(),
            fingerprint,
            perm,
            trie,
        });
    }

    /// The stored relations, in insertion order.
    pub fn relations(&self) -> &[(String, Relation)] {
        &self.relations
    }

    /// The stored tries, in insertion order.
    pub fn tries(&self) -> &[StoredTrie] {
        &self.tries
    }

    /// Adds a named pending [`RelationDelta`] (a mutable session's
    /// uncompacted inserts and tombstones over the relation of the same
    /// name). A catalog holding any delta serializes as format version 2.
    pub fn insert_delta(&mut self, name: impl Into<String>, delta: RelationDelta) {
        self.deltas.push((name.into(), delta));
    }

    /// The stored pending deltas, in insertion order (empty for every
    /// version-1 file).
    pub fn deltas(&self) -> &[(String, RelationDelta)] {
        &self.deltas
    }

    /// Serializes the catalog: version 1 when it holds no pending deltas
    /// (byte-identical to what pre-delta builds wrote), version 2
    /// otherwise.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut p = Writer::new();
        p.u64(self.relations.len() as u64);
        for (name, rel) in &self.relations {
            p.u64(name.len() as u64);
            p.bytes(name.as_bytes());
            p.u64(rel.arity() as u64);
            p.u64(rel.values().len() as u64);
            p.words(rel.values());
        }
        p.u64(self.tries.len() as u64);
        for t in &self.tries {
            p.u64(t.name.len() as u64);
            p.bytes(t.name.as_bytes());
            p.u64(t.fingerprint);
            p.u64(t.perm.len() as u64);
            for &x in &t.perm {
                p.u64(x as u64);
            }
            p.u64(t.trie.tuple_count() as u64);
            let dims = t.trie.level_dims();
            p.u64(dims.len() as u64);
            for (v, c) in dims {
                p.u64(v as u64);
                p.u64(c as u64);
            }
            p.u64(t.trie.words().len() as u64);
            p.words(t.trie.words());
        }
        let version = if self.deltas.is_empty() {
            MIN_FORMAT_VERSION
        } else {
            p.u64(self.deltas.len() as u64);
            for (name, d) in &self.deltas {
                p.u64(name.len() as u64);
                p.bytes(name.as_bytes());
                p.u64(d.arity() as u64);
                p.u64(d.inserts().values().len() as u64);
                p.words(d.inserts().values());
                p.u64(d.tombstones().values().len() as u64);
                p.words(d.tombstones().values());
            }
            FORMAT_VERSION
        };
        let payload = p.into_bytes();

        let mut out = Vec::with_capacity(28 + payload.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&version.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Parses a catalog from bytes, validating header, checksum, and every
    /// structural invariant of the payload.
    ///
    /// # Errors
    ///
    /// Returns the [`StoreError`] describing the first problem found; see
    /// the variant docs for the taxonomy.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, StoreError> {
        if bytes.len() < 8 {
            return Err(StoreError::Truncated {
                needed: 8,
                available: bytes.len(),
            });
        }
        if &bytes[..8] != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let mut h = Reader::new(&bytes[8..]);
        let version = h.u32()?;
        if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
            return Err(StoreError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let payload_len = h.count()?;
        let checksum = h.u64()?;
        let payload_start = bytes.len() - h.remaining();
        let available = bytes.len() - payload_start;
        if available < payload_len {
            return Err(StoreError::Truncated {
                needed: payload_len,
                available,
            });
        }
        if available > payload_len {
            return Err(StoreError::Malformed {
                detail: format!("{} trailing bytes after payload", available - payload_len),
            });
        }
        let payload = &bytes[payload_start..];
        let found = fnv1a64(payload);
        if found != checksum {
            return Err(StoreError::ChecksumMismatch {
                expected: checksum,
                found,
            });
        }

        let mut r = Reader::new(payload);
        let mut catalog = StoredCatalog::new();
        let rel_count = r.count()?;
        for _ in 0..rel_count {
            let name = r.string()?;
            let arity = r.count()?;
            let word_count = r.count()?;
            let data = r.words(word_count)?;
            if arity == 0 {
                return Err(StoreError::Malformed {
                    detail: format!("relation {name:?} has arity 0"),
                });
            }
            if data.len() % arity != 0 {
                return Err(StoreError::Malformed {
                    detail: format!(
                        "relation {name:?} row buffer of {} words is not divisible by \
                         arity {arity}",
                        data.len()
                    ),
                });
            }
            let rel = Relation::from_tuples(arity, data.chunks_exact(arity)).map_err(|e| {
                StoreError::Malformed {
                    detail: format!("relation {name:?}: {e}"),
                }
            })?;
            catalog.insert_relation(name, rel);
        }
        let trie_count = r.count()?;
        for _ in 0..trie_count {
            let name = r.string()?;
            let fingerprint = r.u64()?;
            let perm_len = r.count()?;
            let mut perm = Vec::with_capacity(perm_len.min(r.remaining() / 8));
            for _ in 0..perm_len {
                perm.push(r.count()?);
            }
            let tuple_count = r.count()?;
            let level_count = r.count()?;
            let mut dims = Vec::with_capacity(level_count.min(r.remaining() / 16));
            for _ in 0..level_count {
                let v = r.count()?;
                let c = r.count()?;
                dims.push((v, c));
            }
            let word_count = r.count()?;
            let words = r.words(word_count)?;
            let trie = Trie::from_parts(words, &dims, tuple_count).map_err(|e| match e {
                TrieLayoutError::Offset {
                    level,
                    index,
                    offset,
                    limit,
                } => StoreError::OversizeOffset {
                    level,
                    index,
                    offset,
                    limit,
                },
                other => StoreError::Malformed {
                    detail: format!("stored trie {name:?}: {other}"),
                },
            })?;
            catalog.insert_trie(name, fingerprint, perm, Arc::new(trie));
        }
        if version >= 2 {
            let delta_count = r.count()?;
            for _ in 0..delta_count {
                let name = r.string()?;
                let arity = r.count()?;
                if arity == 0 {
                    return Err(StoreError::Malformed {
                        detail: format!("delta for {name:?} has arity 0"),
                    });
                }
                let side = |what: &str, r: &mut Reader<'_>| -> Result<Relation, StoreError> {
                    let word_count = r.count()?;
                    let data = r.words(word_count)?;
                    if data.len() % arity != 0 {
                        return Err(StoreError::Malformed {
                            detail: format!(
                                "delta {what} of {name:?}: {} words not divisible by \
                                 arity {arity}",
                                data.len()
                            ),
                        });
                    }
                    Relation::from_tuples(arity, data.chunks_exact(arity)).map_err(|e| {
                        StoreError::Malformed {
                            detail: format!("delta {what} of {name:?}: {e}"),
                        }
                    })
                };
                let inserts = side("inserts", &mut r)?;
                let tombstones = side("tombstones", &mut r)?;
                if !delta::intersection(&inserts, &tombstones).is_empty() {
                    return Err(StoreError::Malformed {
                        detail: format!(
                            "delta of {name:?} lists the same row as insert and tombstone"
                        ),
                    });
                }
                let d = RelationDelta::from_parts(inserts, tombstones).map_err(|e| {
                    StoreError::Malformed {
                        detail: format!("delta of {name:?}: {e}"),
                    }
                })?;
                catalog.insert_delta(name, d);
            }
        }
        if !r.is_exhausted() {
            return Err(StoreError::Malformed {
                detail: format!("{} unparsed bytes inside payload", r.remaining()),
            });
        }
        Ok(catalog)
    }

    /// Writes the catalog to `path` (atomically enough for a build
    /// artifact: a full rewrite, no partial update protocol).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the file cannot be written.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), StoreError> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Reads and validates a catalog from `path`. Cost is O(bytes-read):
    /// no trie is ever rebuilt.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the file cannot be read, or any
    /// validation error from [`StoredCatalog::from_bytes`].
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let bytes = std::fs::read(path)?;
        StoredCatalog::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_catalog() -> StoredCatalog {
        let edges = Relation::from_pairs(vec![(1, 2), (2, 3), (3, 1), (1, 3)]);
        let rev = edges.permute(&[1, 0]);
        let mut cat = StoredCatalog::new();
        cat.insert_trie(
            "edge",
            edges.fingerprint(),
            vec![0, 1],
            Arc::new(Trie::build(&edges)),
        );
        cat.insert_trie(
            "edge",
            edges.fingerprint(),
            vec![1, 0],
            Arc::new(Trie::build(&rev)),
        );
        cat.insert_relation("edge", edges);
        cat
    }

    /// Wraps a raw payload in a valid header (correct checksum), so tests
    /// can hand-craft payload-level corruption.
    fn frame(payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        out.extend_from_slice(payload);
        out
    }

    #[test]
    fn round_trip_preserves_relations_and_tries() {
        let cat = sample_catalog();
        let bytes = cat.to_bytes();
        let back = StoredCatalog::from_bytes(&bytes).unwrap();
        assert_eq!(back.relations().len(), 1);
        assert_eq!(back.relations()[0].0, "edge");
        assert_eq!(back.relations()[0].1, cat.relations()[0].1);
        assert_eq!(
            back.relations()[0].1.fingerprint(),
            cat.relations()[0].1.fingerprint(),
            "fingerprints must survive the round trip (they key the cache)"
        );
        assert_eq!(back.tries().len(), 2);
        for (a, b) in back.tries().iter().zip(cat.tries()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.fingerprint, b.fingerprint);
            assert_eq!(a.perm, b.perm);
            assert_eq!(*a.trie, *b.trie, "tries must be byte-identical");
        }
    }

    #[test]
    fn save_and_open_round_trip_through_a_file() {
        let cat = sample_catalog();
        let path = std::env::temp_dir().join("triejax_store_roundtrip.tjx");
        cat.save(&path).unwrap();
        let back = StoredCatalog::open(&path).unwrap();
        assert_eq!(back.to_bytes(), cat.to_bytes());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_missing_file_is_io_error() {
        let err = StoredCatalog::open("/nonexistent/definitely/missing.tjx").unwrap_err();
        assert!(matches!(err, StoreError::Io(_)));
    }

    #[test]
    fn truncated_files_are_rejected_at_every_cut() {
        let bytes = sample_catalog().to_bytes();
        // Cut inside the magic, the header, and the payload.
        for cut in [0, 4, 8, 12, 20, 27, 28, bytes.len() / 2, bytes.len() - 1] {
            let err = StoredCatalog::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, StoreError::Truncated { .. }),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = sample_catalog().to_bytes();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            StoredCatalog::from_bytes(&bytes).unwrap_err(),
            StoreError::BadMagic
        ));
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let mut bytes = sample_catalog().to_bytes();
        bytes[8] = 99;
        assert!(matches!(
            StoredCatalog::from_bytes(&bytes).unwrap_err(),
            StoreError::UnsupportedVersion {
                found: 99,
                supported: FORMAT_VERSION
            }
        ));
    }

    #[test]
    fn flipped_payload_bit_is_a_checksum_mismatch() {
        let mut bytes = sample_catalog().to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            StoredCatalog::from_bytes(&bytes).unwrap_err(),
            StoreError::ChecksumMismatch { .. }
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = sample_catalog().to_bytes();
        bytes.push(0);
        assert!(matches!(
            StoredCatalog::from_bytes(&bytes).unwrap_err(),
            StoreError::Malformed { .. }
        ));
    }

    #[test]
    fn oversize_offset_is_rejected_with_its_own_error() {
        // Hand-craft a payload with a valid checksum whose trie offset
        // table points past the leaf level: 0 relations, 1 binary trie
        // with values [1] and child_starts [0, 9] over a 1-wide leaf.
        let mut p = Writer::new();
        p.u64(0); // rel_count
        p.u64(1); // trie_count
        p.u64(1);
        p.bytes(b"t");
        p.u64(0xDEAD); // fingerprint
        p.u64(2); // perm_len
        p.u64(0);
        p.u64(1);
        p.u64(1); // tuple_count
        p.u64(2); // level_count
        p.u64(1); // level 0 values
        p.u64(2); // level 0 child entries
        p.u64(1); // level 1 values (leaf)
        p.u64(0);
        p.u64(4); // word_count
        p.words(&[1, 0, 9, 5]); // values, starts 0..9 (!), leaf value
        let bytes = frame(&p.into_bytes());
        let err = StoredCatalog::from_bytes(&bytes).unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::OversizeOffset {
                    level: 0,
                    offset: 9,
                    limit: 1,
                    ..
                }
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn malformed_payloads_are_rejected_not_panicked_on() {
        // Row buffer not divisible by arity.
        let mut p = Writer::new();
        p.u64(1);
        p.u64(1);
        p.bytes(b"r");
        p.u64(2); // arity
        p.u64(3); // word_count — not a multiple of 2
        p.words(&[1, 2, 3]);
        p.u64(0);
        assert!(matches!(
            StoredCatalog::from_bytes(&frame(&p.into_bytes())).unwrap_err(),
            StoreError::Malformed { .. }
        ));

        // Zero-arity relation.
        let mut p = Writer::new();
        p.u64(1);
        p.u64(1);
        p.bytes(b"r");
        p.u64(0);
        p.u64(0);
        p.u64(0);
        assert!(matches!(
            StoredCatalog::from_bytes(&frame(&p.into_bytes())).unwrap_err(),
            StoreError::Malformed { .. }
        ));

        // Non-UTF-8 name.
        let mut p = Writer::new();
        p.u64(1);
        p.u64(2);
        p.bytes(&[0xFF, 0xFE]);
        assert!(matches!(
            StoredCatalog::from_bytes(&frame(&p.into_bytes())).unwrap_err(),
            StoreError::Malformed { .. }
        ));

        // Inflated word count: claims 2^40 words in an 8-byte payload.
        let mut p = Writer::new();
        p.u64(1);
        p.u64(1);
        p.bytes(b"r");
        p.u64(2);
        p.u64(1 << 40);
        assert!(matches!(
            StoredCatalog::from_bytes(&frame(&p.into_bytes())).unwrap_err(),
            StoreError::Truncated { .. }
        ));
    }

    #[test]
    fn empty_catalog_round_trips() {
        let cat = StoredCatalog::new();
        let back = StoredCatalog::from_bytes(&cat.to_bytes()).unwrap();
        assert!(back.relations().is_empty());
        assert!(back.tries().is_empty());
        assert!(back.deltas().is_empty());
    }

    #[test]
    fn delta_free_catalogs_still_write_version_1() {
        let bytes = sample_catalog().to_bytes();
        assert_eq!(
            u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
            1,
            "frozen snapshots must stay byte-stable across the v2 revision"
        );
        assert!(StoredCatalog::from_bytes(&bytes)
            .unwrap()
            .deltas()
            .is_empty());
    }

    #[test]
    fn deltas_round_trip_as_version_2() {
        let mut cat = sample_catalog();
        let d = RelationDelta::from_parts(
            Relation::from_pairs(vec![(7, 8), (9, 1)]),
            Relation::from_pairs(vec![(1, 2)]),
        )
        .unwrap();
        cat.insert_delta("edge", d.clone());
        let bytes = cat.to_bytes();
        assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), 2);
        let back = StoredCatalog::from_bytes(&bytes).unwrap();
        assert_eq!(back.deltas().len(), 1);
        assert_eq!(back.deltas()[0].0, "edge");
        assert_eq!(back.deltas()[0].1, d);
        assert_eq!(back.to_bytes(), bytes, "re-serialization is stable");
    }

    #[test]
    fn overlapping_delta_sides_are_rejected_at_parse_time() {
        // Hand-craft a v2 payload whose delta lists (1,2) as both insert
        // and tombstone — from_parts can't see this (it only checks
        // arity), so the store validates disjointness itself.
        let mut p = Writer::new();
        p.u64(0); // rel_count
        p.u64(0); // trie_count
        p.u64(1); // delta_count
        p.u64(1);
        p.bytes(b"r");
        p.u64(2); // arity
        p.u64(2); // insert words
        p.words(&[1, 2]);
        p.u64(2); // tombstone words
        p.words(&[1, 2]);
        let err = StoredCatalog::from_bytes(&frame(&p.into_bytes())).unwrap_err();
        assert!(
            matches!(err, StoreError::Malformed { ref detail } if detail.contains("insert and tombstone")),
            "got {err:?}"
        );
    }

    #[test]
    fn version_1_files_do_not_carry_a_delta_section() {
        // A v1 frame that *appends* delta-looking bytes must be rejected
        // as trailing garbage, not silently parsed.
        let cat = sample_catalog();
        let mut bytes = cat.to_bytes();
        assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), 1);
        bytes.extend_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            StoredCatalog::from_bytes(&bytes).unwrap_err(),
            StoreError::Malformed { .. } | StoreError::Truncated { .. }
        ));
    }
}
