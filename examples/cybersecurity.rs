//! Cyber-security pattern hunting: detect lateral-movement loops
//! (3- and 4-cycles) and beacon fan-out patterns in a network-flow graph
//! using ad-hoc datalog queries over the same engine stack.
//!
//! Run with: `cargo run --release --example cybersecurity`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use triejax::{TrieJax, TrieJaxConfig};
use triejax_graph::Graph;
use triejax_join::{Catalog, CollectSink, Ctj, JoinEngine};
use triejax_query::{parse_query, CompiledQuery};

/// A synthetic enterprise-flow graph: mostly benign tree-ish traffic plus
/// one planted compromise ring 100 -> 101 -> 102 -> 103 -> 100.
fn flow_graph() -> Graph {
    let mut rng = StdRng::seed_from_u64(2026);
    let n = 400u32;
    let mut edges = Vec::new();
    for host in 1..n {
        // Most hosts talk to a handful of servers.
        for _ in 0..3 {
            edges.push((host, rng.gen_range(0..16)));
        }
    }
    // The planted lateral-movement ring, plus a staging hop into it.
    edges.extend([(100, 101), (101, 102), (102, 103), (103, 100), (7, 100)]);
    Graph::from_edges(n, edges)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = flow_graph();
    println!(
        "network-flow graph: {} hosts, {} flows\n",
        graph.num_nodes(),
        graph.num_edges()
    );
    let mut catalog = Catalog::new();
    catalog.insert("Flow", graph.edge_relation());

    // Ad-hoc datalog: a 4-hop lateral-movement loop.
    let loop4 = parse_query("lateral4(a,b,c,d) = Flow(a,b),Flow(b,c),Flow(c,d),Flow(d,a)")?;
    let plan = CompiledQuery::compile(&loop4)?;
    println!("hunting: {loop4}");

    let accel = TrieJax::new(TrieJaxConfig::default());
    let mut hits = CollectSink::new();
    let report = accel.run_with_sink(&plan, &catalog, &mut hits)?;
    println!(
        "  {} loop instances found in {:.1} us of simulated accelerator time",
        hits.len(),
        report.runtime_s * 1e6
    );
    let ring: Vec<Vec<u32>> = hits
        .tuples()
        .iter()
        .filter(|t| t.contains(&100))
        .cloned()
        .collect();
    println!(
        "  instances through host 100 (the planted ring): {}",
        ring.len()
    );
    assert!(ring.iter().any(|t| {
        let mut s = t.clone();
        s.sort_unstable();
        s == vec![100, 101, 102, 103]
    }));

    // Software cross-check on the same query.
    let mut sw = CollectSink::new();
    Ctj::new().execute(&plan, &catalog, &mut sw)?;
    assert_eq!(sw.into_sorted(), hits.into_sorted());
    println!("  cross-checked against software CTJ\n");

    // A second hunt: beacon fan-out (one host contacting three distinct
    // controllers that all relay to the same sink).
    let beacon = parse_query(
        "beacon(src,c1,c2,sink) = Flow(src,c1),Flow(src,c2),Flow(c1,sink),Flow(c2,sink)",
    )?;
    let plan = CompiledQuery::compile(&beacon)?;
    println!("hunting: {beacon}");
    let report = accel.run(&plan, &catalog)?;
    println!(
        "  {} candidate beacon patterns ({} cycles simulated, {:.0}% energy in memory)",
        report.results,
        report.cycles,
        report.energy.memory_fraction() * 100.0
    );
    Ok(())
}
