//! Energy deep-dive: a Figure-15-style per-component energy report for one
//! dataset, showing where every microjoule goes and how runtime couples
//! DRAM background energy to performance.
//!
//! Run with: `cargo run --release --example energy_report [dataset]`

use triejax::{TrieJax, TrieJaxConfig};
use triejax_graph::{Dataset, Scale};
use triejax_join::Catalog;
use triejax_query::{patterns::Pattern, CompiledQuery};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = std::env::args()
        .nth(1)
        .and_then(|s| Dataset::from_label(&s))
        .unwrap_or(Dataset::Bitcoin);
    let graph = dataset.generate(Scale::Tiny);
    println!(
        "energy report for {} ({} nodes, {} edges)\n",
        dataset.label(),
        graph.num_nodes(),
        graph.num_edges()
    );
    let mut catalog = Catalog::new();
    catalog.insert("G", graph.edge_relation());
    let accel = TrieJax::new(TrieJaxConfig::default());

    println!(
        "{:>8} {:>10} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "query", "time(us)", "total(uJ)", "DRAM%", "LLC%", "L2%", "L1%", "PJR%", "core%"
    );
    for p in Pattern::PAPER {
        let plan = CompiledQuery::compile(&p.query())?;
        let r = accel.run(&plan, &catalog)?;
        let e = &r.energy;
        let total = e.total().max(1e-18);
        println!(
            "{:>8} {:>10.1} {:>9.2} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
            p.label(),
            r.runtime_s * 1e6,
            total * 1e6,
            100.0 * e.dram / total,
            100.0 * e.llc / total,
            100.0 * e.l2 / total,
            100.0 * e.l1 / total,
            100.0 * e.pjr / total,
            100.0 * e.core / total,
        );
    }
    println!(
        "\nThe DRAM share includes background+refresh power integrated over the\n\
         runtime — the paper's key observation: making the accelerator faster\n\
         also makes it proportionally more energy-efficient (Section 4.4)."
    );
    Ok(())
}
