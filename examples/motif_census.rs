//! Motif census: count all eight built-in patterns (the paper's five plus
//! the extension queries) across the six Table-2 datasets on the TrieJax
//! accelerator, printing a motif-count matrix and per-query PJR behaviour.
//!
//! Run with: `cargo run --release --example motif_census`

use triejax::{TrieJax, TrieJaxConfig};
use triejax_graph::{Dataset, Scale};
use triejax_join::Catalog;
use triejax_query::{patterns::Pattern, CompiledQuery};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let accel = TrieJax::new(TrieJaxConfig::default());
    let patterns = Pattern::ALL;

    print!("{:>10}", "dataset");
    for p in patterns {
        print!("{:>10}", p.label());
    }
    println!();

    for d in Dataset::ALL {
        let graph = d.generate(Scale::Tiny);
        let mut catalog = Catalog::new();
        catalog.insert("G", graph.edge_relation());
        print!("{:>10}", d.label());
        for p in patterns {
            let plan = CompiledQuery::compile(&p.query())?;
            let report = accel.run(&plan, &catalog)?;
            print!("{:>10}", report.results);
        }
        println!();
    }

    println!("\nPJR-cache behaviour on wiki (hit rate / values replayed):");
    let mut catalog = Catalog::new();
    catalog.insert("G", Dataset::WikiVote.generate(Scale::Tiny).edge_relation());
    for p in patterns {
        let plan = CompiledQuery::compile(&p.query())?;
        let report = accel.run(&plan, &catalog)?;
        println!(
            "  {:8} {:>5.1}% hit rate, {:>9} values replayed{}",
            p.label(),
            report.pjr.hit_rate() * 100.0,
            report.pjr.values_replayed,
            if plan.cache_specs().is_empty() {
                "  (no valid cache)"
            } else {
                ""
            }
        );
    }
    Ok(())
}
