//! The paper's introductory example (Figure 1): the natural join of
//! Posts, Likes and Follows — "posts liked by users with followers" — run
//! over a synthetic social schema with multiple distinct relations,
//! with the worst-case-optimal engines (sequential CTJ and the
//! pool-based `ParCtj` builder) against the traditional pairwise plan.
//!
//! Run with: `cargo run --release --example paper_figure1`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use triejax::{TrieJax, TrieJaxConfig};
use triejax_join::{Catalog, CollectSink, CountSink, Ctj, JoinEngine, PairwiseHash, ParCtj};
use triejax_query::{parse_query, CompiledQuery};
use triejax_relation::Relation;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(71);
    let users = 200u32;
    let posts = 500u32;

    // Posts(author, postID); Likes(user, post); Follows(follower, followed).
    let posts_rel = Relation::from_pairs((0..posts).map(|p| (rng.gen_range(0..users), 10_000 + p)));
    let likes_rel = Relation::from_pairs(
        (0..2_000).map(|_| (rng.gen_range(0..users), 10_000 + rng.gen_range(0..posts))),
    );
    let follows_rel = Relation::from_pairs((0..1_500).map(|_| {
        let a = rng.gen_range(0..users);
        let b = rng.gen_range(0..users);
        (a, b)
    }));
    let mut catalog = Catalog::new();
    catalog.insert("Posts", posts_rel);
    catalog.insert("Likes", likes_rel);
    catalog.insert("Follows", follows_rel);

    // Figure 1, in datalog: SELECT * FROM Posts R, Likes S, Follows T
    //   WHERE R.postID = S.post AND S.user = T.followed
    let q = parse_query(
        "fig1(author,post,user,follower) = \
         Posts(author,post), Likes(user,post), Follows(follower,user)",
    )?;
    println!("query: {q}\n");
    let plan = CompiledQuery::compile(&q)?;
    println!("plan:  {}\n", plan.describe());

    // WCOJ (CTJ) versus the traditional pairwise plan.
    let mut wcoj = CollectSink::new();
    let ctj_stats = Ctj::new().execute(&plan, &catalog, &mut wcoj)?;
    let mut sink = CountSink::default();
    let pw_stats = PairwiseHash::new().execute(&plan, &catalog, &mut sink)?;
    println!("results: {}", wcoj.len());
    println!(
        "intermediates: CTJ cached {} values, pairwise materialized {} tuples",
        ctj_stats.intermediates, pw_stats.intermediates
    );

    // The pool-based parallel engine streams the identical tuple order
    // through its shard merge (root-range shards + shared PJR cache).
    let mut parallel = CollectSink::new();
    let par_stats = ParCtj::with_pool(2).execute(&plan, &catalog, &mut parallel)?;
    assert_eq!(parallel.tuples(), wcoj.tuples());
    println!(
        "parallel CTJ agrees in order across {} shards ({} stolen)",
        par_stats.shards, par_stats.steals
    );

    // And on the accelerator.
    let report = TrieJax::new(TrieJaxConfig::default()).run(&plan, &catalog)?;
    assert_eq!(report.results as usize, wcoj.len());
    println!(
        "TrieJax: {} cycles ({:.1} us), {:.1}% of energy in the memory system",
        report.cycles,
        report.runtime_s * 1e6,
        report.energy.memory_fraction() * 100.0
    );
    Ok(())
}
