//! Persistence: snapshot a session's tries into a relocatable store
//! file, re-open it cold, and serve the paper's Cycle3/Cycle4 queries
//! with **zero trie builds** — the batch-library-to-serving-system path.
//!
//! The store is keyed by `(relation name, content fingerprint,
//! permutation)`, so a re-opened catalog whose base data changed simply
//! never reaches the stale tries: no invalidation protocol, correctness
//! by construction.
//!
//! Run with: `cargo run --release --example persistence -- [PATH]`
//! (default `triejax_catalog.tjx` in the current directory). CI uses
//! this binary to create the store its `TRIEJAX_STORE` test leg opens.

use triejax_join::{Catalog, CollectSink, Session, StoredCatalog};
use triejax_query::{patterns, CompiledQuery};
use triejax_relation::Relation;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "triejax_catalog.tjx".to_string());

    // A ring graph with chords; steps +1, +2 and -4 close both
    // triangles (2 + 2 - 4 = 0) and 4-cycles (1 + 1 + 2 - 4 = 0).
    let n = 40u32;
    let edges: Vec<(u32, u32)> = (0..n)
        .flat_map(|i| [(i, (i + 1) % n), (i, (i + 2) % n), ((i + 4) % n, i)])
        .collect();
    let mut catalog = Catalog::new();
    catalog.insert("G", Relation::from_pairs(edges));

    let plans: Vec<CompiledQuery> = [patterns::cycle3(), patterns::cycle4()]
        .iter()
        .map(CompiledQuery::compile)
        .collect::<Result<_, _>>()?;

    // 1. Producer: build every trie the plans need, snapshot, save.
    let producer = Session::new(catalog).with_pool(4);
    let mut warm = Vec::new();
    for plan in &plans {
        let mut sink = CollectSink::new();
        let stats = producer.query(plan).run(&mut sink)?;
        println!(
            "producer ran {} -> {} tuples ({} ns of trie builds)",
            plan.describe(),
            sink.len(),
            stats.trie_build_ns
        );
        warm.push(sink.tuples().to_vec());
    }
    let stored = producer.snapshot(&plans)?;
    stored.save(&path)?;
    let bytes = std::fs::metadata(&path)?.len();
    println!(
        "saved {} relation(s) + {} trie(s) to {path} ({bytes} bytes)\n",
        stored.relations().len(),
        stored.tries().len()
    );

    // 2. Consumer: a cold process opens the file — O(bytes-read), no
    // trie construction — and serves the same queries.
    let reopened = Session::open(&path)?;
    for (plan, expect) in plans.iter().zip(&warm) {
        let mut sink = CollectSink::new();
        let stats = reopened.query(plan).run(&mut sink)?;
        assert_eq!(
            sink.tuples(),
            expect.as_slice(),
            "answers must be identical"
        );
        assert_eq!(stats.trie_build_ns, 0, "a cold open must build nothing");
        println!(
            "reopened session served {} tuples with {} store hits and 0 ns of builds",
            sink.len(),
            stats.trie_cache_hits
        );
    }

    // 3. The checksum guards the whole payload: flip one bit and the
    // open fails loudly instead of serving corrupt tries.
    let mut raw = std::fs::read(&path)?;
    let last = raw.len() - 1;
    raw[last] ^= 1;
    let corrupt = std::env::temp_dir().join("triejax_corrupt_demo.tjx");
    std::fs::write(&corrupt, &raw)?;
    match StoredCatalog::open(&corrupt) {
        Err(e) => println!("\ncorrupted copy rejected as expected: {e}"),
        Ok(_) => panic!("a corrupted store must not open"),
    }
    std::fs::remove_file(&corrupt).ok();
    Ok(())
}
