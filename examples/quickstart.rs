//! Quickstart: find every triangle in a small graph, first with the
//! software Cached TrieJoin engine, then on the shared parallel runtime
//! (the pool-based `ParCtj` builder with dynamic splitting enabled),
//! then on the simulated TrieJax accelerator — and check they all
//! agree, tuple for tuple.
//!
//! Run with: `cargo run --release --example quickstart`

use triejax::{TrieJax, TrieJaxConfig};
use triejax_join::{Catalog, CollectSink, Ctj, JoinEngine, ParCtj};
use triejax_query::{patterns, CompiledQuery};
use triejax_relation::Relation;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small directed graph with two triangles: (0,1,2) and (2,3,4).
    let edges = vec![(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2), (1, 4)];
    let mut catalog = Catalog::new();
    catalog.insert("G", Relation::from_pairs(edges));

    // Table-1 query: cycle3(x,y,z) = G(x,y),G(y,z),G(z,x).
    let query = patterns::cycle3();
    println!("query: {query}");
    let plan = CompiledQuery::compile(&query)?;
    println!("plan:  {}\n", plan.describe());

    // 1. Software Cached TrieJoin (the algorithm TrieJax accelerates).
    let mut software = CollectSink::new();
    let stats = Ctj::new().execute(&plan, &catalog, &mut software)?;
    println!("software CTJ found {} matches:", software.len());
    for t in software.tuples() {
        println!("  (x={}, y={}, z={})", t[0], t[1], t[2]);
    }
    println!(
        "  work: {} leapfrog ops, {} LUB searches, {} bytes touched\n",
        stats.match_ops,
        stats.lub_ops,
        stats.bytes_moved()
    );

    // 2. The same join on the shared parallel runtime: a pool of
    // workers over root-range shards, dynamic splitting on, one PJR
    // cache shared by every worker. The merged stream is guaranteed to
    // be tuple-for-tuple identical to the sequential engine — same
    // tuples, same order.
    let mut parallel = CollectSink::new();
    let par_stats =
        ParCtj::with_pool(2)
            .with_split(true)
            .execute(&plan, &catalog, &mut parallel)?;
    assert_eq!(parallel.tuples(), software.tuples());
    println!(
        "parallel CTJ agrees in order: {} shards, {} stolen, {} split off mid-run\n",
        par_stats.shards, par_stats.steals, par_stats.splits
    );

    // 3. The TrieJax accelerator (cycle-level simulation).
    let accel = TrieJax::new(TrieJaxConfig::default());
    let mut hardware = CollectSink::new();
    let report = accel.run_with_sink(&plan, &catalog, &mut hardware)?;
    println!("TrieJax simulated run:");
    println!("  results:  {}", report.results);
    println!(
        "  cycles:   {} @2.38GHz ({:.3} us)",
        report.cycles,
        report.runtime_s * 1e6
    );
    println!(
        "  threads:  {} used, {} dynamic spawns",
        report.threads_used, report.spawns
    );
    println!(
        "  energy:   {:.3} uJ ({:.0}% in the memory system)",
        report.energy_j() * 1e6,
        report.energy.memory_fraction() * 100.0
    );

    assert_eq!(software.into_sorted(), hardware.into_sorted());
    println!("\nsoftware and hardware agree on every tuple.");
    Ok(())
}
