//! Social-network motif analysis: count tightly-knit friend groups
//! (4-cliques) and influence chains (length-3 paths) on a synthetic
//! Facebook-like graph, comparing the TrieJax accelerator against all four
//! baseline systems — a miniature of the paper's Figure 13.
//!
//! Run with: `cargo run --release --example social_network`

use triejax::{TrieJax, TrieJaxConfig};
use triejax_baselines::{BaselineSystem, CtjSoftware, EmptyHeaded, Graphicionado, Q100};
use triejax_graph::{Dataset, Scale};
use triejax_join::Catalog;
use triejax_query::{patterns::Pattern, CompiledQuery};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = Dataset::Facebook.generate(Scale::Tiny);
    println!(
        "synthetic ego-Facebook: {} users, {} follow edges (max degree {})\n",
        graph.num_nodes(),
        graph.num_edges(),
        graph.max_out_degree()
    );
    let mut catalog = Catalog::new();
    catalog.insert("G", graph.edge_relation());

    for pattern in [Pattern::Clique4, Pattern::Path4] {
        let plan = CompiledQuery::compile(&pattern.query())?;
        let accel = TrieJax::new(TrieJaxConfig::default());
        let report = accel.run(&plan, &catalog)?;
        let what = match pattern {
            Pattern::Clique4 => "tightly-knit 4-groups",
            _ => "length-3 influence chains",
        };
        println!("{} ({}): {} matches", what, pattern.label(), report.results);
        println!(
            "  TrieJax: {:>10.3} ms   {:>8.2} uJ",
            report.runtime_s * 1e3,
            report.energy_j() * 1e6
        );

        let mut systems: Vec<Box<dyn BaselineSystem>> = vec![
            Box::new(CtjSoftware::new()),
            Box::new(EmptyHeaded::new()),
            Box::new(Q100::new()),
            Box::new(Graphicionado::new()),
        ];
        for s in &mut systems {
            let r = s.evaluate(&plan, &catalog)?;
            assert_eq!(r.results, report.results, "all systems agree");
            println!(
                "  {:14} {:>8.3} ms   {:>8.2} uJ   ({:.1}x slower, {:.1}x more energy)",
                r.system,
                r.time_s * 1e3,
                r.energy_j * 1e6,
                r.time_s / report.runtime_s,
                r.energy_j / report.energy_j()
            );
        }
        println!();
    }
    Ok(())
}
