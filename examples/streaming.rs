//! Streaming: pull join results through a [`triejax_join::ResultStream`]
//! instead of collecting them — exact sequential order, incrementally,
//! with cooperative cancellation when the consumer stops early.
//!
//! Run with: `cargo run --release --example streaming`

use triejax_join::{Catalog, Session};
use triejax_query::{patterns, CompiledQuery};
use triejax_relation::Relation;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A dense graph: every ordered pair of 14 vertices.
    let edges: Vec<(u32, u32)> = (0..14u32)
        .flat_map(|a| (0..14u32).filter(move |&b| b != a).map(move |b| (a, b)))
        .collect();
    let mut catalog = Catalog::new();
    catalog.insert("G", Relation::from_pairs(edges));

    let session = Session::new(catalog).with_pool(4);
    let plan = CompiledQuery::compile(&patterns::cycle3())?;

    // 1. Pull the full stream: tuples arrive in the exact order the
    // sequential engine would emit them, while workers run ahead.
    let mut stream = session.query(&plan).stream();
    let mut count = 0usize;
    let mut first = None;
    for tuple in stream.by_ref() {
        if first.is_none() {
            first = Some(tuple.clone());
        }
        count += 1;
    }
    let stats = stream
        .outcome()
        .expect("exhausted stream has an outcome")
        .as_ref()
        .map_err(|e| e.to_string())?;
    println!(
        "streamed {count} triangles (first: {:?}), {} shards across {} workers",
        first.expect("dense graph has triangles"),
        stats.shards,
        session.workers()
    );

    // 2. Stop early: taking 5 rows and dropping the stream cancels the
    // run cooperatively — workers notice the token and park; nothing
    // blocks on a full channel.
    let early: Vec<Vec<u32>> = session.query(&plan).stream().take(5).collect();
    println!(
        "took {} rows, then dropped the stream — no hang",
        early.len()
    );

    // 3. Or declare the limit up front: the budget trips inside the
    // engine, and the stream still ends with an exact prefix.
    let mut limited = session.query(&plan).with_row_limit(5).stream();
    let prefix: Vec<Vec<u32>> = limited.by_ref().collect();
    assert_eq!(prefix, early, "both 5-row prefixes are identical");
    println!("row-limited stream returned the same 5-row prefix");

    // 4. Two streams on one session run concurrently against the shared
    // worker pool and trie cache.
    let cycle4 = CompiledQuery::compile(&patterns::cycle4())?;
    let mut a = session.query(&plan).stream();
    let mut b = session.query(&cycle4).stream();
    let (mut triangles, mut squares) = (0usize, 0usize);
    loop {
        match (a.next(), b.next()) {
            (None, None) => break,
            (ta, tb) => {
                triangles += usize::from(ta.is_some());
                squares += usize::from(tb.is_some());
            }
        }
    }
    println!("interleaved pull: {triangles} triangles alongside {squares} 4-cycles");
    Ok(())
}
