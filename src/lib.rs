//! Root crate: see examples/ and tests/.
