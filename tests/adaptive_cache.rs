//! Cost-based adaptive PJR cache policy battery. Three properties, at
//! every pool size and tally mode:
//!
//! 1. **Safety** — enabling the adaptive policy never changes the result
//!    stream, whether a spec is dropped at plan time or demoted at run
//!    time: tuple-for-tuple identical to the fixed-spec engines.
//! 2. **Demotion fires** — a zero-reuse workload (bijective `x -> y`, so
//!    every cache key is looked up exactly once) must demote the useless
//!    spec after its probation window and report `cache_demotions > 0`.
//! 3. **Reuse is kept** — a high-reuse funnel (many `x` per hub `y`)
//!    must keep its spec and hit at least as often as sequential CTJ.

use triejax_join::{
    Catalog, CollectSink, Counting, Ctj, CtjConfig, EngineStats, NoTally, ParCtj, Tally,
};
use triejax_query::{CompiledQuery, Query};
use triejax_relation::Relation;

const POOL_SIZES: [usize; 3] = [1, 2, 7];

/// `ans(x, y, z) :- R(x, y), S(y, z)`: `z` depends only on `y`, so the
/// planner installs a cache spec at the `z` level keyed by `y` — the spec
/// whose worth depends entirely on how often each `y` is revisited.
fn funnel_query() -> CompiledQuery {
    let q = Query::builder("adaptive_cache")
        .head(["x", "y", "z"])
        .atom("R", ["x", "y"])
        .atom("S", ["y", "z"])
        .build()
        .unwrap();
    CompiledQuery::compile(&q).unwrap()
}

/// Zero-reuse: `R` is a bijection (`y = x` for 300 roots), so every
/// cached entry is built once and never replayed — well past the
/// 64-lookup probation window.
fn zero_reuse_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.insert(
        "R",
        Relation::from_pairs((0..300u32).map(|x| (x, x)).collect::<Vec<_>>()),
    );
    let mut s = Vec::new();
    for y in 0..300u32 {
        s.push((y, y % 7));
        s.push((y, y % 7 + 10));
    }
    c.insert("S", Relation::from_pairs(s));
    c
}

/// High reuse: 200 roots funnel into 40 hub `y` values, so each entry is
/// replayed ~4 times and the lookup count (200) is well past the window —
/// probation must end in *keeping* the spec.
fn high_reuse_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.insert(
        "R",
        Relation::from_pairs((0..200u32).map(|x| (x, x % 40)).collect::<Vec<_>>()),
    );
    let mut s = Vec::new();
    for y in 0..40u32 {
        for z in 0..5u32 {
            s.push((y, y + z));
        }
    }
    c.insert("S", Relation::from_pairs(s));
    c
}

fn fixed_config() -> CtjConfig {
    CtjConfig {
        entry_capacity: None,
        max_entries: None,
        adaptive: false,
    }
}

fn adaptive_config() -> CtjConfig {
    CtjConfig {
        adaptive: true,
        ..fixed_config()
    }
}

fn run_seq<T: Tally>(
    config: CtjConfig,
    plan: &CompiledQuery,
    catalog: &Catalog,
) -> (Vec<Vec<u32>>, EngineStats) {
    let mut sink = CollectSink::new();
    let stats = Ctj::with_config(config)
        .run_tallied::<T>(plan, catalog, &mut sink)
        .expect("runs")
        .to_counting();
    (sink.tuples().to_vec(), stats)
}

fn run_par<T: Tally>(
    pool: usize,
    adaptive: bool,
    plan: &CompiledQuery,
    catalog: &Catalog,
) -> (Vec<Vec<u32>>, EngineStats) {
    let mut sink = CollectSink::new();
    // An explicit config pins the shared cache unbounded, so an ambient
    // `TRIEJAX_CACHE_CAP` (the CI tinycache leg) can't starve the
    // hit-count assertions; `with_cache_adapt` then toggles the policy.
    let stats = ParCtj::with_pool(pool)
        .config(fixed_config())
        .with_cache_adapt(adaptive)
        .run_tallied::<T>(plan, catalog, &mut sink)
        .expect("runs")
        .to_counting();
    (sink.tuples().to_vec(), stats)
}

/// Property 1 + 2 on the zero-reuse workload: the spec is demoted at run
/// time, the demotion is reported, and the stream is exactly the
/// fixed-spec stream — sequentially and at every pool size, in both tally
/// modes.
#[test]
fn runtime_demotion_fires_and_never_changes_results() {
    let plan = funnel_query();
    let catalog = zero_reuse_catalog();
    let (reference, fixed) = run_seq::<Counting>(fixed_config(), &plan, &catalog);
    assert!(
        fixed.cache_misses >= 64,
        "fixture must outlast the probation window"
    );
    assert_eq!(fixed.cache_demotions, 0, "fixed engine never demotes");

    for counting in [true, false] {
        let (tuples, stats) = if counting {
            run_seq::<Counting>(adaptive_config(), &plan, &catalog)
        } else {
            run_seq::<NoTally>(adaptive_config(), &plan, &catalog)
        };
        assert_eq!(tuples, reference, "seq adaptive counting={counting}");
        assert!(
            stats.cache_demotions > 0,
            "zero reuse must demote (counting={counting})"
        );
        assert!(
            stats.cache_misses < fixed.cache_misses,
            "a demoted depth must stop building entries (counting={counting})"
        );

        for pool in POOL_SIZES {
            let (tuples, stats) = if counting {
                run_par::<Counting>(pool, true, &plan, &catalog)
            } else {
                run_par::<NoTally>(pool, true, &plan, &catalog)
            };
            assert_eq!(
                tuples, reference,
                "par adaptive pool={pool} counting={counting}"
            );
            assert!(
                stats.cache_demotions > 0,
                "shared store must demote too (pool={pool} counting={counting})"
            );
        }
    }
}

/// Property 3 on the funnel: plenty of lookups, plenty of hits — the
/// adaptive engines must keep the spec (no demotion) and hit at least as
/// often as the fixed sequential engine, while staying exact.
#[test]
fn high_reuse_funnel_keeps_its_spec() {
    let plan = funnel_query();
    let catalog = high_reuse_catalog();
    let (reference, fixed) = run_seq::<Counting>(fixed_config(), &plan, &catalog);
    assert!(fixed.cache_hits > 0, "the funnel must actually replay");

    for counting in [true, false] {
        let (tuples, stats) = if counting {
            run_seq::<Counting>(adaptive_config(), &plan, &catalog)
        } else {
            run_seq::<NoTally>(adaptive_config(), &plan, &catalog)
        };
        assert_eq!(tuples, reference, "seq adaptive counting={counting}");
        assert_eq!(stats.cache_demotions, 0, "reused spec must be kept");
        assert!(
            stats.cache_hits >= fixed.cache_hits,
            "adaptive run must hit at least as often (counting={counting})"
        );

        for pool in POOL_SIZES {
            let (tuples, stats) = if counting {
                run_par::<Counting>(pool, true, &plan, &catalog)
            } else {
                run_par::<NoTally>(pool, true, &plan, &catalog)
            };
            assert_eq!(
                tuples, reference,
                "par adaptive pool={pool} counting={counting}"
            );
            assert_eq!(
                stats.cache_demotions, 0,
                "reused spec must survive the shared probation (pool={pool})"
            );
            assert!(
                stats.cache_hits >= fixed.cache_hits,
                "shared cache must replay at least as often (pool={pool})"
            );
        }
    }
}

/// Plan-time side of the policy: when the reuse estimate says every entry
/// would be built exactly once (a one-tuple `R` bounds the non-key prefix
/// domain at 1), the adaptive engines drop the spec before running — no
/// lookups, no builds — and the stream still matches the fixed engine.
#[test]
fn plan_time_drop_skips_the_cache_entirely() {
    let plan = funnel_query();
    let mut catalog = Catalog::new();
    catalog.insert("R", Relation::from_pairs(vec![(0u32, 0u32)]));
    catalog.insert(
        "S",
        Relation::from_pairs((0..6u32).map(|z| (0, z)).collect::<Vec<_>>()),
    );

    let (reference, fixed) = run_seq::<Counting>(fixed_config(), &plan, &catalog);
    assert!(
        fixed.cache_misses > 0,
        "the fixed engine builds the (useless) entry"
    );
    let (tuples, stats) = run_seq::<Counting>(adaptive_config(), &plan, &catalog);
    assert_eq!(tuples, reference);
    assert_eq!(stats.cache_misses, 0, "dropped spec: no entry builds");
    assert_eq!(stats.cache_hits, 0);
    assert_eq!(stats.cache_demotions, 0, "plan-time drop is not a demotion");

    for pool in POOL_SIZES {
        let (tuples, stats) = run_par::<Counting>(pool, true, &plan, &catalog);
        assert_eq!(tuples, reference, "par pool={pool}");
        assert_eq!(stats.cache_misses, 0, "par pool={pool}: no entry builds");
        assert_eq!(stats.cache_hits, 0);
    }
}
