//! Conformance & stress suite for the **shared sharded PJR cache** of
//! `ParCtj`.
//!
//! The shared cache changes *what is reused* but must never change *what
//! is produced*: whatever the pool size, total capacity (and therefore
//! eviction churn), or tally mode, `ParCtj` has to stay tuple-for-tuple
//! identical — same tuples, same order — to sequential `Ctj` and `Lftj`.
//! On top of conformance, the suite locks in the two properties that
//! motivated sharing:
//!
//! * **effectiveness** — with an unbounded shared cache, the parallel hit
//!   count is at least sequential CTJ's (per-worker caches were
//!   structurally capped below it);
//! * **churn-safety** — a 2-entry capacity makes every stripe evict
//!   constantly, and results must remain exact while the eviction
//!   counters prove the path actually ran.

use proptest::prelude::*;
use triejax_join::{
    Catalog, CollectSink, Counting, Ctj, CtjConfig, JoinEngine, Lftj, NoTally, ParCtj,
};
use triejax_query::{
    patterns::{self, Pattern},
    CompiledQuery,
};
use triejax_relation::Relation;

const POOLS: [usize; 3] = [1, 2, 7];

/// The capacity ladder from the issue: tiny (constant eviction), a small
/// bounded cache, and unbounded. All explicit, so a `TRIEJAX_CACHE_CAP`
/// test environment cannot change what this suite asserts.
fn capacity_ladder() -> [(&'static str, CtjConfig); 3] {
    let tiny = CtjConfig {
        entry_capacity: None,
        max_entries: Some(2),
        adaptive: false,
    };
    let bounded = CtjConfig {
        entry_capacity: None,
        max_entries: Some(64),
        adaptive: false,
    };
    [
        ("tiny", tiny),
        ("bounded", bounded),
        ("unbounded", CtjConfig::default()),
    ]
}

fn catalog_from(edges: Vec<(u32, u32)>) -> Catalog {
    let mut c = Catalog::new();
    c.insert("G", Relation::from_pairs(edges));
    c
}

/// Cubing a uniform sample concentrates mass near zero: low vertex ids
/// become heavy hubs — skewed root domains *and* heavily shared cache
/// keys, the regime the shared cache exists for.
fn power_law(raw: u64, n: u32) -> u32 {
    let u = (raw % 1_000_000) as f64 / 1_000_000.0;
    ((u * u * u) * f64::from(n)) as u32
}

/// Asserts every (pool, capacity, tally) combination of shared-cache
/// `ParCtj` is tuple-for-tuple identical to sequential `Ctj` AND `Lftj`.
fn check_cache_conformance(catalog: &Catalog, pattern: Pattern) {
    let plan = CompiledQuery::compile(&pattern.query()).expect("compiles");

    let mut lftj_sink = CollectSink::new();
    Lftj::new()
        .execute(&plan, catalog, &mut lftj_sink)
        .expect("runs");
    let reference = lftj_sink.tuples();

    let mut ctj_sink = CollectSink::new();
    Ctj::new()
        .execute(&plan, catalog, &mut ctj_sink)
        .expect("runs");
    assert_eq!(ctj_sink.tuples(), reference, "{pattern}: sequential ctj");

    for pool in POOLS {
        for (label, config) in capacity_ladder() {
            for counting in [true, false] {
                let mut engine = ParCtj::with_pool(pool).config(config);
                let mut sink = CollectSink::new();
                let results = if counting {
                    engine
                        .run_tallied::<Counting>(&plan, catalog, &mut sink)
                        .expect("runs")
                        .results
                } else {
                    engine
                        .run_tallied::<NoTally>(&plan, catalog, &mut sink)
                        .expect("runs")
                        .results
                };
                assert_eq!(
                    sink.tuples(),
                    reference,
                    "{pattern}: parctj pool={pool} cap={label} counting={counting}"
                );
                assert_eq!(results as usize, reference.len());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Uniform random graphs: every pool size, capacity, and tally mode
    /// agrees with the sequential engines, in emission order.
    #[test]
    fn shared_cache_parctj_conforms_on_random_graphs(
        edges in prop::collection::btree_set((0u32..22, 0u32..22), 1..130),
        pattern_idx in 0usize..Pattern::PAPER.len(),
    ) {
        let edges: Vec<(u32, u32)> = edges.into_iter().filter(|(a, b)| a != b).collect();
        prop_assume!(!edges.is_empty());
        let catalog = catalog_from(edges);
        check_cache_conformance(&catalog, Pattern::PAPER[pattern_idx]);
    }

    /// Power-law graphs: hub-heavy root domains make workers race for the
    /// same hot cache keys while work stealing rebalances the shards —
    /// the adversarial regime for first-writer-wins insert resolution.
    #[test]
    fn shared_cache_parctj_conforms_on_skewed_graphs(
        raw in prop::collection::vec((0u64..1_000_000, 0u64..1_000_000), 20..150),
        pattern_idx in 0usize..Pattern::PAPER.len(),
    ) {
        let edges: Vec<(u32, u32)> = raw
            .into_iter()
            .map(|(a, b)| (power_law(a, 30), (power_law(b, 30) + 1) % 31))
            .filter(|(a, b)| a != b)
            .collect();
        prop_assume!(!edges.is_empty());
        let catalog = catalog_from(edges);
        check_cache_conformance(&catalog, Pattern::PAPER[pattern_idx]);
    }
}

/// A layered funnel: many roots feed few hubs at every cached depth, so
/// partial-join results replay constantly — the repeated-subpattern
/// workload where the PJR cache is the whole ballgame.
fn funnel_edges() -> Vec<(u32, u32)> {
    let mut edges = Vec::new();
    for x in 0..40u32 {
        edges.push((x, 100 + x % 4)); // 40 roots -> 4 hubs
    }
    for y in 100..104u32 {
        for z in 200..206u32 {
            edges.push((y, z)); // each hub -> 6 mid vertices
        }
    }
    for z in 200..206u32 {
        for w in 300..310u32 {
            edges.push((z, w)); // each mid -> 10 leaves
        }
    }
    edges
}

/// Cache-effectiveness regression: with one cache shared by all workers,
/// the parallel hit count must be **at least** sequential CTJ's. The
/// per-worker caches this design replaced could not satisfy this — each
/// worker re-built entries its siblings already had, so parallel hits
/// were structurally capped below sequential (strictly below, whenever
/// two workers touched the same key).
#[test]
fn shared_cache_hit_count_is_at_least_sequential_ctjs() {
    let catalog = catalog_from(funnel_edges());
    let plan = CompiledQuery::compile(&patterns::path4()).expect("compiles");

    let mut seq_sink = CollectSink::new();
    let seq = Ctj::new()
        .execute(&plan, &catalog, &mut seq_sink)
        .expect("runs");
    assert!(seq.cache_hits > 0, "the workload must exercise the cache");

    for pool in [2, 3, 7] {
        let mut par_sink = CollectSink::new();
        let par = ParCtj::with_pool(pool)
            .config(CtjConfig::default()) // explicitly unbounded
            .execute(&plan, &catalog, &mut par_sink)
            .expect("runs");
        assert_eq!(par_sink.tuples(), seq_sink.tuples());
        assert!(par.shards > 1, "the funnel must actually shard");
        assert!(
            par.cache_hits >= seq.cache_hits,
            "pool={pool}: shared cache lost hits to partitioning: \
             par {} < seq {}",
            par.cache_hits,
            seq.cache_hits
        );
        // Race-deduped accounting keeps the books exact: every cacheable
        // lookup is a hit or a miss, and misses count unique builds, so
        // the totals match the sequential run precisely.
        assert_eq!(
            par.cache_hits + par.cache_misses,
            seq.cache_hits + seq.cache_misses,
            "pool={pool}: lookup totals must match the sequential run"
        );
    }
}

/// With an unbounded shared cache the hit/miss totals are deterministic
/// even under insert races (a race is reclassified, never re-counted), so
/// the two tally modes must report identical cache stats.
#[test]
fn unbounded_shared_cache_stats_are_tally_mode_independent() {
    let catalog = catalog_from(funnel_edges());
    let plan = CompiledQuery::compile(&patterns::path4()).expect("compiles");
    let mut a = CollectSink::new();
    let counting = ParCtj::with_pool(3)
        .config(CtjConfig::default())
        .run_tallied::<Counting>(&plan, &catalog, &mut a)
        .expect("runs");
    let mut b = CollectSink::new();
    let fast = ParCtj::with_pool(3)
        .config(CtjConfig::default())
        .run_tallied::<NoTally>(&plan, &catalog, &mut b)
        .expect("runs");
    assert_eq!(a.tuples(), b.tuples());
    assert_eq!(counting.cache_hits, fast.cache_hits);
    assert_eq!(counting.cache_misses, fast.cache_misses);
    assert_eq!(counting.intermediates, fast.intermediates);
    assert_eq!(fast.memory_accesses(), 0);
}

/// Eviction stress: a 2-entry total capacity makes every stripe evict on
/// nearly every publish. Results must stay exact and the eviction
/// counters must prove the churn path ran — this is the path a
/// happy-path-only suite never touches.
#[test]
fn constant_eviction_keeps_results_exact() {
    // Deterministic scrambled graph: enough distinct cache keys that a
    // 2-entry cache cannot hold even one stripe's working set.
    let mut edges = Vec::new();
    for i in 0..60u32 {
        edges.push((i, (i * 17 + 5) % 60));
        edges.push((i, (i * 31 + 11) % 60));
        edges.push(((i * 13 + 7) % 60, i));
    }
    let catalog = catalog_from(edges);

    for pattern in [Pattern::Path3, Pattern::Path4, Pattern::Cycle4] {
        let plan = CompiledQuery::compile(&pattern.query()).expect("compiles");
        let mut reference = CollectSink::new();
        Ctj::new()
            .execute(&plan, &catalog, &mut reference)
            .expect("runs");

        for counting in [true, false] {
            // Pinned to the static 8-shard schedule so the shard count
            // stays exact even when TRIEJAX_SPLIT is set in the
            // environment (split stress lives in parallel_agreement.rs).
            let mut engine = ParCtj::with_pool(2)
                .cache_capacity(2)
                .with_granularity(8)
                .with_split(false);
            let mut sink = CollectSink::new();
            let evictions = if counting {
                let stats = engine
                    .run_tallied::<Counting>(&plan, &catalog, &mut sink)
                    .expect("runs");
                assert_eq!(stats.shards, 8, "{pattern}: stress must shard");
                stats.cache_evictions
            } else {
                engine
                    .run_tallied::<NoTally>(&plan, &catalog, &mut sink)
                    .expect("runs")
                    .cache_evictions
            };
            assert_eq!(
                sink.tuples(),
                reference.tuples(),
                "{pattern}: eviction churn changed the result stream"
            );
            assert!(
                evictions > 0,
                "{pattern}: a 2-entry cache must evict on this workload"
            );
        }
    }
}

/// Capacity zero disables caching entirely and must still be exact (and
/// report zero hits — nothing can be stored, so nothing can replay).
#[test]
fn zero_capacity_shared_cache_is_exact_and_hitless() {
    let catalog = catalog_from(funnel_edges());
    let plan = CompiledQuery::compile(&patterns::path4()).expect("compiles");
    let mut reference = CollectSink::new();
    Lftj::new()
        .execute(&plan, &catalog, &mut reference)
        .expect("runs");
    let mut sink = CollectSink::new();
    let stats = ParCtj::with_pool(2)
        .cache_capacity(0)
        .execute(&plan, &catalog, &mut sink)
        .expect("runs");
    assert_eq!(sink.tuples(), reference.tuples());
    assert_eq!(stats.cache_hits, 0);
    assert!(stats.cache_overflows > 0, "builds are dropped, not stored");
}
