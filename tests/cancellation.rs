//! Cooperative cancellation conformance: budget-governed runs of the
//! parallel engines must terminate (no deadlock, no lost merge lane),
//! deliver an **exact ordered prefix** of the sequential result to the
//! sink, and report consistent partial statistics — at pool sizes 1, 2
//! and 7, with dynamic splitting on and off, for both `ParLftj` and
//! `ParCtj`, with the cancellation point varied across the whole run by a
//! randomized row limit.

use proptest::prelude::*;
use std::time::Duration;

use triejax_join::{
    CancelReason, CancelToken, Catalog, CollectSink, JoinEngine, JoinError, Lftj, ParCtj, ParLftj,
};
use triejax_query::{patterns::Pattern, CompiledQuery};
use triejax_relation::Relation;

const POOL_SIZES: [usize; 3] = [1, 2, 7];

fn catalog_from(edges: Vec<(u32, u32)>) -> Catalog {
    let mut c = Catalog::new();
    c.insert("G", Relation::from_pairs(edges));
    c
}

/// Hub graph: many parents funnel through one hub vertex, giving dynamic
/// splitting enough root-level work to actually fire.
fn hub_edges() -> Vec<(u32, u32)> {
    let mut edges = Vec::new();
    for i in 1..220u32 {
        edges.push((0, i));
        edges.push((i, 0));
    }
    edges
}

fn reference_tuples(plan: &CompiledQuery, catalog: &Catalog) -> Vec<Vec<u32>> {
    let mut sink = CollectSink::new();
    Lftj::new().execute(plan, catalog, &mut sink).expect("runs");
    sink.tuples().to_vec()
}

/// Runs one governed engine and checks the row-limit contract: when the
/// limit is at or below the total, the engine reports
/// `Cancelled(RowLimit)` and the sink holds exactly the first
/// `min(total, limit)` rows of the sequential stream; a limit above the
/// total never cancels and delivers everything.
fn check_row_limited(
    run: &mut dyn FnMut(&mut CollectSink) -> Result<u64, JoinError>,
    reference: &[Vec<u32>],
    limit: u64,
    context: &str,
) {
    let mut sink = CollectSink::new();
    let outcome = run(&mut sink);
    let total = reference.len() as u64;
    if limit <= total {
        // The charge that *reaches* the limit trips the flag, so
        // `limit == total` still reports a cancellation — with the full
        // result already delivered.
        match outcome {
            Err(JoinError::Cancelled { reason, partial }) => {
                assert_eq!(reason, CancelReason::RowLimit, "{context}");
                assert!(
                    partial.results >= limit.min(total),
                    "{context}: workers emitted at least the delivered rows"
                );
            }
            other => panic!("{context}: expected Cancelled(RowLimit), got {other:?}"),
        }
    } else {
        let results = outcome.unwrap_or_else(|e| panic!("{context}: unexpected error {e}"));
        assert_eq!(results, total, "{context}");
    }
    let expect = limit.min(total) as usize;
    assert_eq!(
        sink.tuples(),
        &reference[..expect],
        "{context}: delivered rows must be the exact ordered prefix"
    );
}

fn check_cancellation_matrix(catalog: &Catalog, pattern: Pattern, limit: u64) {
    let plan = CompiledQuery::compile(&pattern.query()).expect("compiles");
    let reference = reference_tuples(&plan, catalog);
    for pool in POOL_SIZES {
        for split in [false, true] {
            check_row_limited(
                &mut |sink| {
                    ParLftj::with_pool(pool)
                        .with_split(split)
                        .with_row_limit(limit)
                        .execute(&plan, catalog, sink)
                        .map(|s| s.results)
                },
                &reference,
                limit,
                &format!("{pattern} parlftj pool={pool} split={split} limit={limit}"),
            );
            check_row_limited(
                &mut |sink| {
                    ParCtj::with_pool(pool)
                        .with_split(split)
                        .with_row_limit(limit)
                        .execute(&plan, catalog, sink)
                        .map(|s| s.results)
                },
                &reference,
                limit,
                &format!("{pattern} parctj pool={pool} split={split} limit={limit}"),
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random graphs, random cancellation point: the row limit lands
    /// anywhere from "before the first row" to "past the end", and every
    /// pool size × split mode × engine combination must deliver the exact
    /// prefix without hanging.
    #[test]
    fn row_limited_runs_deliver_exact_prefixes(
        edges in prop::collection::btree_set((0u32..24, 0u32..24), 1..140),
        pattern_idx in 0usize..Pattern::PAPER.len(),
        limit in 0u64..40,
    ) {
        let edges: Vec<(u32, u32)> = edges.into_iter().filter(|(a, b)| a != b).collect();
        prop_assume!(!edges.is_empty());
        let catalog = catalog_from(edges);
        check_cancellation_matrix(&catalog, Pattern::PAPER[pattern_idx], limit);
    }
}

/// Forced-split runs (single coarse seed, 4 workers) cancelled mid-run:
/// the in-flight `open_lane_after` handoffs must not leak lanes — the
/// drain terminates and delivers the exact prefix — and the partial stats
/// stay consistent: every task the pool ran is either the seed or a
/// recorded split, so `shards == 1 + splits`.
#[test]
fn forced_split_cancellation_keeps_stats_consistent() {
    let catalog = catalog_from(hub_edges());
    let plan = CompiledQuery::compile(&Pattern::Path3.query()).expect("compiles");
    let reference = reference_tuples(&plan, &catalog);
    assert!(reference.len() > 16, "fixture must have work to cancel");
    for limit in [1u64, 7, 16] {
        for engine in ["parlftj", "parctj"] {
            let mut sink = CollectSink::new();
            let result = if engine == "parlftj" {
                ParLftj::with_pool(4)
                    .with_granularity(1)
                    .with_split(true)
                    .with_row_limit(limit)
                    .execute(&plan, &catalog, &mut sink)
            } else {
                ParCtj::with_pool(4)
                    .with_granularity(1)
                    .with_split(true)
                    .with_row_limit(limit)
                    .execute(&plan, &catalog, &mut sink)
            };
            let err = result.expect_err("limit below total must cancel");
            match err {
                JoinError::Cancelled { reason, partial } => {
                    assert_eq!(reason, CancelReason::RowLimit, "{engine} limit={limit}");
                    assert_eq!(
                        partial.shards,
                        1 + partial.splits,
                        "{engine} limit={limit}: every pool task is the seed or a split"
                    );
                }
                other => panic!("{engine} limit={limit}: wrong error {other:?}"),
            }
            assert_eq!(
                sink.tuples(),
                &reference[..limit as usize],
                "{engine} limit={limit}"
            );
        }
    }
}

/// An external token fired from another thread mid-run: the engine either
/// finishes first (full result) or reports the external cancellation —
/// and in both cases the sink holds an exact prefix and the call returns.
#[test]
fn token_fired_from_another_thread_terminates_with_a_prefix() {
    let catalog = catalog_from(hub_edges());
    let plan = CompiledQuery::compile(&Pattern::Path3.query()).expect("compiles");
    let reference = reference_tuples(&plan, &catalog);
    for delay_us in [0u64, 50, 500] {
        let token = CancelToken::new();
        let firing = token.clone();
        let firer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_micros(delay_us));
            firing.cancel();
        });
        let mut sink = CollectSink::new();
        let outcome = ParLftj::with_pool(2)
            .with_cancel_token(token)
            .execute(&plan, &catalog, &mut sink);
        firer.join().expect("firer thread");
        match outcome {
            Ok(stats) => assert_eq!(stats.results as usize, reference.len()),
            Err(JoinError::Cancelled { reason, .. }) => {
                assert_eq!(reason, CancelReason::External, "delay={delay_us}us")
            }
            Err(other) => panic!("delay={delay_us}us: wrong error {other}"),
        }
        assert!(
            reference.starts_with(sink.tuples()),
            "delay={delay_us}us: delivered rows must be a prefix"
        );
    }
}

/// A zero deadline cancels before (or just after) the first poll; the
/// engines must report `Deadline` and still deliver only prefix rows.
#[test]
fn zero_deadline_cancels_both_engines() {
    let catalog = catalog_from(hub_edges());
    let plan = CompiledQuery::compile(&Pattern::Path3.query()).expect("compiles");
    let reference = reference_tuples(&plan, &catalog);
    for split in [false, true] {
        let mut sink = CollectSink::new();
        let err = ParCtj::with_pool(2)
            .with_split(split)
            .with_deadline(Duration::ZERO)
            .execute(&plan, &catalog, &mut sink)
            .expect_err("a zero deadline must cancel");
        assert!(
            matches!(
                err,
                JoinError::Cancelled {
                    reason: CancelReason::Deadline,
                    ..
                }
            ),
            "split={split}: {err:?}"
        );
        assert!(reference.starts_with(sink.tuples()), "split={split}");
    }
}
