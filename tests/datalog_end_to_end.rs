//! End-to-end: ad-hoc datalog queries parsed from text, compiled, and run
//! through every engine and the simulator on generated graphs.

use triejax::{TrieJax, TrieJaxConfig};
use triejax_graph::{erdos_renyi, power_law_fixed};
use triejax_join::{Catalog, CollectSink, Ctj, GenericJoin, JoinEngine, Lftj, PairwiseHash};
use triejax_query::{parse_query, suggest_order, CompiledQuery};

fn run_all(text: &str, catalog: &Catalog) -> Vec<Vec<u32>> {
    let q = parse_query(text).expect("parses");
    let plan = CompiledQuery::compile(&q).expect("compiles");
    let mut reference = CollectSink::new();
    Lftj::new()
        .execute(&plan, catalog, &mut reference)
        .expect("runs");
    let reference = reference.into_sorted();
    let engines: Vec<Box<dyn JoinEngine>> = vec![
        Box::new(Ctj::new()),
        Box::new(GenericJoin::new()),
        Box::new(PairwiseHash::new()),
    ];
    for mut e in engines {
        let mut sink = CollectSink::new();
        e.execute(&plan, catalog, &mut sink).expect("runs");
        assert_eq!(
            sink.into_sorted(),
            reference,
            "{} disagrees on {text}",
            e.name()
        );
    }
    let mut hw = CollectSink::new();
    TrieJax::new(TrieJaxConfig::default())
        .run_with_sink(&plan, catalog, &mut hw)
        .expect("runs");
    assert_eq!(hw.into_sorted(), reference, "simulator disagrees on {text}");
    reference
}

#[test]
fn two_relation_queries() {
    let mut catalog = Catalog::new();
    catalog.insert("Follows", erdos_renyi(60, 240, 9).edge_relation());
    catalog.insert("Likes", power_law_fixed(60, 300, 2.2, 10).edge_relation());
    // The paper's Figure 1 query shape: posts liked by users with
    // followers.
    let results = run_all("q(u,p,f) = Likes(u,p), Follows(f,u)", &catalog);
    assert!(!results.is_empty());
}

#[test]
fn diamond_and_butterfly_shapes() {
    let mut catalog = Catalog::new();
    catalog.insert("G", power_law_fixed(50, 420, 2.0, 11).edge_relation());
    let diamond = run_all("diamond(a,b,c,d) = G(a,b),G(a,c),G(b,d),G(c,d)", &catalog);
    assert!(!diamond.is_empty());
    run_all(
        "butterfly(h,a,b,t) = G(h,a),G(h,b),G(a,t),G(b,t),G(h,t)",
        &catalog,
    );
}

#[test]
fn custom_variable_orders_agree() {
    let mut catalog = Catalog::new();
    catalog.insert("G", erdos_renyi(40, 320, 12).edge_relation());
    let q = parse_query("tri(x,y,z) = G(x,y),G(y,z),G(z,x)").unwrap();
    let default_plan = CompiledQuery::compile(&q).unwrap();
    let suggested = CompiledQuery::compile_with_order(&q, suggest_order(&q)).unwrap();
    let reversed = CompiledQuery::compile_with_order(&q, vec![2, 1, 0]).unwrap();
    let mut results = Vec::new();
    for plan in [&default_plan, &suggested, &reversed] {
        let mut sink = CollectSink::new();
        Ctj::new().execute(plan, &catalog, &mut sink).expect("runs");
        results.push(sink.into_sorted());
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[0], results[2]);
}

#[test]
fn self_loop_free_generators_mean_no_trivial_cycles() {
    let mut catalog = Catalog::new();
    catalog.insert("G", erdos_renyi(30, 200, 13).edge_relation());
    // cycle2 = mutual edges; every result must have x != y because the
    // generators are loop-free.
    let results = run_all("mutual(x,y) = G(x,y),G(y,x)", &catalog);
    for t in &results {
        assert_ne!(t[0], t[1]);
    }
}
