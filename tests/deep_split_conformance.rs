//! Sub-root shard splitting battery: workloads whose **root domain is a
//! single value**, so the only way a 4-worker pool can rebalance is to
//! carve up a level *below* the root — the depth-aware handoff of this
//! PR's tentpole. Every carved-up run must stay tuple-for-tuple identical
//! to the sequential engines, across pool sizes, split modes and tally
//! modes, and the acceptance workload must actually report deep splits.

use triejax_join::{
    Catalog, CollectSink, Counting, Ctj, JoinEngine, Lftj, NoTally, ParCtj, ParLftj,
};
use triejax_query::{CompiledQuery, Query};
use triejax_relation::Relation;

const POOL_SIZES: [usize; 3] = [1, 2, 7];

/// `ans(x, y, z) :- R(x, y), S(y, z)` — `x` is the root variable and `R`
/// its only depth-0 participant, so giving `R` a single root value pins
/// the root domain to exactly one shard seed. All parallelism then has to
/// come from splitting the `y` (or `z`) level.
fn single_root_query() -> CompiledQuery {
    let q = Query::builder("deep_split")
        .head(["x", "y", "z"])
        .atom("R", ["x", "y"])
        .atom("S", ["y", "z"])
        .build()
        .unwrap();
    CompiledQuery::compile(&q).unwrap()
}

/// The acceptance workload: one root (`x = 0`) fanning out to `spokes`
/// values of `y`, where `y = 0` is a hub whose `z` subtree dwarfs the
/// fringe. The seed shard is still grinding through the hub long after
/// its three siblings park, so the idle-sibling poll at the `y` and `z`
/// levels is guaranteed to see takers.
fn single_root_hub(spokes: u32, hub_fanout: u32) -> Catalog {
    let mut c = Catalog::new();
    c.insert(
        "R",
        Relation::from_pairs((0..spokes).map(|y| (0, y)).collect::<Vec<_>>()),
    );
    let mut s = Vec::new();
    for z in 0..hub_fanout {
        s.push((0u32, z));
    }
    for y in 1..spokes {
        for z in 0..4u32 {
            s.push((y, y.wrapping_mul(31).wrapping_add(z) % spokes));
        }
    }
    c.insert("S", Relation::from_pairs(s));
    c
}

/// Sequential reference stream, asserting LFTJ and CTJ agree on it first
/// (the parallel engines' ordered merge reproduces exactly this order).
fn reference(plan: &CompiledQuery, catalog: &Catalog) -> Vec<Vec<u32>> {
    let mut lftj_sink = CollectSink::new();
    Lftj::new()
        .execute(plan, catalog, &mut lftj_sink)
        .expect("runs");
    let mut ctj_sink = CollectSink::new();
    Ctj::new()
        .execute(plan, catalog, &mut ctj_sink)
        .expect("runs");
    assert_eq!(
        ctj_sink.tuples(),
        lftj_sink.tuples(),
        "sequential agreement"
    );
    lftj_sink.tuples().to_vec()
}

/// Runs both parallel engines at `pool` workers with deep splitting on or
/// off, in both tally modes, asserting the exact reference stream and the
/// shard accounting; returns `(splits, deep_splits, split_depth)` summed
/// over the runs.
fn check_deep_split(
    plan: &CompiledQuery,
    catalog: &Catalog,
    reference: &[Vec<u32>],
    pool: usize,
    split: bool,
) -> (u64, u64, u64) {
    let mut totals = (0, 0, 0);
    for counting in [true, false] {
        let mut lftj_engine = ParLftj::with_pool(pool)
            .with_granularity(1)
            .with_split(split)
            .with_split_depth(if split { usize::MAX } else { 0 });
        let mut ctj_engine = ParCtj::with_pool(pool)
            .with_granularity(1)
            .with_split(split)
            .with_split_depth(if split { usize::MAX } else { 0 });
        type Run<'a> = (
            &'a str,
            &'a mut dyn FnMut(&mut CollectSink) -> (u64, u64, u64, u64),
        );
        let runs: [Run<'_>; 2] = [
            ("parlftj", &mut |sink| {
                let s = if counting {
                    lftj_engine
                        .run_tallied::<Counting>(plan, catalog, sink)
                        .expect("runs")
                } else {
                    lftj_engine
                        .run_tallied::<NoTally>(plan, catalog, sink)
                        .expect("runs")
                        .to_counting()
                };
                (s.splits, s.deep_splits, s.split_depth, s.shards)
            }),
            ("parctj", &mut |sink| {
                let s = if counting {
                    ctj_engine
                        .run_tallied::<Counting>(plan, catalog, sink)
                        .expect("runs")
                } else {
                    ctj_engine
                        .run_tallied::<NoTally>(plan, catalog, sink)
                        .expect("runs")
                        .to_counting()
                };
                (s.splits, s.deep_splits, s.split_depth, s.shards)
            }),
        ];
        for (name, run) in runs {
            let mut sink = CollectSink::new();
            let (splits, deep, depth, shards) = run(&mut sink);
            assert_eq!(
                sink.tuples(),
                reference,
                "{name} pool={pool} split={split} counting={counting} stream"
            );
            // One seed (root domain 1), one extra shard per handoff.
            assert_eq!(
                shards,
                1 + splits,
                "{name} pool={pool} split={split} counting={counting} shards"
            );
            if !split {
                assert_eq!(splits, 0, "{name}: splitting was disabled");
            }
            // The root has a single value, so any split here is sub-root.
            assert_eq!(deep, splits, "{name}: every split must be deep here");
            assert!(
                splits == 0 || depth >= 1,
                "{name}: split without a recorded generation"
            );
            totals.0 += splits;
            totals.1 += deep;
            totals.2 = totals.2.max(depth);
        }
    }
    totals
}

/// Exactness across the full battery: pools 1/2/7 x split on/off x both
/// tally modes, on the single-root hub. Splits may or may not fire at the
/// smaller pool sizes — the stream must be exact either way.
#[test]
fn deep_split_battery_is_exact_at_every_pool_size() {
    let plan = single_root_query();
    let catalog = single_root_hub(60, 400);
    let reference = reference(&plan, &catalog);
    for pool in POOL_SIZES {
        for split in [false, true] {
            check_deep_split(&plan, &catalog, &reference, pool, split);
        }
    }
}

/// The acceptance criterion: on the single-root hub with a 4-worker pool
/// and granularity-1 seeding, both engines must report `splits > 0` with
/// `split_depth >= 1` and `deep_splits > 0` — the donated ranges all live
/// below the root — while the merged stream stays exactly sequential.
#[test]
fn sub_root_splits_fire_on_the_single_root_hub() {
    let plan = single_root_query();
    let catalog = single_root_hub(260, 26_000);
    let reference = reference(&plan, &catalog);
    let (splits, deep, depth) = check_deep_split(&plan, &catalog, &reference, 4, true);
    assert!(splits > 0, "the single-root hub must split below the root");
    assert_eq!(deep, splits);
    assert!(
        depth >= 1,
        "a deep handoff chain must record its generation"
    );
}

/// Deep splitting is opt-in: with a depth cap of 0 (the built-in
/// default, pinned here so an ambient `TRIEJAX_SPLIT_DEPTH` can't lift
/// it), a root domain of one value can never split, so the run degrades
/// to the sequential fast path — exact, with zero splits.
#[test]
fn depth_cap_zero_keeps_single_root_runs_sequential() {
    let plan = single_root_query();
    let catalog = single_root_hub(60, 400);
    let reference = reference(&plan, &catalog);
    for counting in [true, false] {
        let mut sink = CollectSink::new();
        let mut engine = ParLftj::with_pool(4)
            .with_granularity(1)
            .with_split(true)
            .with_split_depth(0);
        let stats = if counting {
            engine
                .run_tallied::<Counting>(&plan, &catalog, &mut sink)
                .expect("runs")
        } else {
            engine
                .run_tallied::<NoTally>(&plan, &catalog, &mut sink)
                .expect("runs")
                .to_counting()
        };
        assert_eq!(sink.tuples(), reference);
        assert_eq!(stats.splits, 0, "nothing above the root to carve");
        assert_eq!(stats.deep_splits, 0);
    }
}
