//! The incremental-maintenance differential battery: a session that has
//! absorbed an arbitrary sequence of insert/delete batches (overlapping
//! the base, re-inserting tombstoned rows, deleting never-present rows)
//! must answer every paper pattern **tuple-for-tuple, in order** like a
//! catalog rebuilt from scratch over the merged view — through every
//! engine (sequential LFTJ/CTJ/GenericJoin and the pool engines at sizes
//! 1/2/7, split on and off, both tally modes), and at **every compaction
//! threshold**: eager (ratio 0), the default 0.5, and never (∞) must all
//! produce the same stream.

use std::collections::BTreeSet;

use proptest::prelude::*;
use triejax_join::{
    Catalog, CollectSink, Counting, Ctj, DeltaMap, GenericJoin, JoinEngine, Lftj, NoTally, ParCtj,
    ParLftj, Session,
};
use triejax_query::{patterns::Pattern, CompiledQuery};
use triejax_relation::Relation;

const POOL_SIZES: [usize; 3] = [1, 2, 7];

/// Compaction thresholds the battery replays every scenario under: eager,
/// aggressive, the default, lazy, and disabled. The answer must never
/// depend on when (or whether) deltas fold into their base.
const COMPACT_RATIOS: [f64; 5] = [0.0, 0.25, 0.5, 1.0, f64::INFINITY];

type Edge = (u32, u32);

fn relation_of(edges: &BTreeSet<Edge>) -> Relation {
    Relation::from_pairs(edges.iter().copied())
}

/// Ground truth: a fresh catalog over exactly `edges`, queried by the
/// sequential reference engine.
fn rebuilt_reference(edges: &BTreeSet<Edge>, plan: &CompiledQuery) -> Vec<Vec<u32>> {
    let mut catalog = Catalog::new();
    catalog.insert("G", relation_of(edges));
    let mut sink = CollectSink::new();
    Lftj::new()
        .execute(plan, &catalog, &mut sink)
        .expect("runs");
    sink.tuples().to_vec()
}

/// Runs `plan` over `catalog` + `deltas` through every engine and checks
/// each stream against `expect`.
fn check_every_engine(
    catalog: &Catalog,
    deltas: &DeltaMap,
    plan: &CompiledQuery,
    expect: &[Vec<u32>],
    context: &str,
) {
    macro_rules! check_seq {
        ($name:literal, $engine:expr) => {
            for counting in [true, false] {
                let mut sink = CollectSink::new();
                if counting {
                    $engine
                        .run_tallied_with::<Counting>(plan, catalog, deltas, &mut sink)
                        .expect("runs");
                } else {
                    $engine
                        .run_tallied_with::<NoTally>(plan, catalog, deltas, &mut sink)
                        .expect("runs");
                }
                assert_eq!(
                    sink.tuples(),
                    expect,
                    "{context}: {} counting={counting}",
                    $name
                );
            }
        };
    }
    check_seq!("lftj", Lftj::new());
    check_seq!("ctj", Ctj::new());
    check_seq!("generic", GenericJoin::new());

    for pool in POOL_SIZES {
        for split in [false, true] {
            for counting in [true, false] {
                let mut sink = CollectSink::new();
                let mut lftj = ParLftj::with_pool(pool).with_split(split);
                if counting {
                    lftj.run_tallied_with::<Counting>(plan, catalog, deltas, &mut sink)
                        .expect("runs");
                } else {
                    lftj.run_tallied_with::<NoTally>(plan, catalog, deltas, &mut sink)
                        .expect("runs");
                }
                assert_eq!(
                    sink.tuples(),
                    expect,
                    "{context}: parlftj pool={pool} split={split} counting={counting}"
                );

                let mut sink = CollectSink::new();
                let mut ctj = ParCtj::with_pool(pool).with_split(split);
                if counting {
                    ctj.run_tallied_with::<Counting>(plan, catalog, deltas, &mut sink)
                        .expect("runs");
                } else {
                    ctj.run_tallied_with::<NoTally>(plan, catalog, deltas, &mut sink)
                        .expect("runs");
                }
                assert_eq!(
                    sink.tuples(),
                    expect,
                    "{context}: parctj pool={pool} split={split} counting={counting}"
                );
            }
        }
    }
}

/// Replays `batches` over a session seeded with `base` at each compaction
/// ratio, mirrors the merged view in plain sets, and checks the query
/// answer after every apply against a from-scratch rebuild.
fn check_scenario(
    base: &BTreeSet<Edge>,
    batches: &[(BTreeSet<Edge>, BTreeSet<Edge>)],
    pattern: Pattern,
) {
    let plan = CompiledQuery::compile(&pattern.query()).expect("compiles");
    for ratio in COMPACT_RATIOS {
        let mut catalog = Catalog::new();
        catalog.insert("G", relation_of(base));
        let session = Session::new(catalog).with_pool(2).with_compact_ratio(ratio);

        let mut truth = base.clone();
        for (step, (inserts, deletes)) in batches.iter().enumerate() {
            let epoch = session
                .apply("G", &relation_of(inserts), &relation_of(deletes))
                .expect("apply succeeds");
            assert_eq!(epoch, step as u64 + 1, "one epoch per batch");
            // Deletes first, inserts win: mirror the session's semantics.
            for e in deletes {
                truth.remove(e);
            }
            truth.extend(inserts.iter().copied());

            let expect = rebuilt_reference(&truth, &plan);
            let context = format!("{pattern} ratio={ratio} step={step}");
            check_every_engine(
                &session.catalog(),
                &session.deltas(),
                &plan,
                &expect,
                &context,
            );
            // The serving path (query handles snapshot the epoch) agrees.
            let streamed: Vec<Vec<u32>> = session.query(&plan).stream().collect();
            assert_eq!(streamed, expect, "{context}: session stream");
        }

        // Explicit compaction after the whole sequence is invisible too.
        session.compact("G");
        assert!(session.deltas().is_empty());
        let expect = rebuilt_reference(&truth, &plan);
        let streamed: Vec<Vec<u32>> = session.query(&plan).stream().collect();
        assert_eq!(streamed, expect, "{pattern} ratio={ratio}: post-compact");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random base graph × random batch sequence: batches share the base's
    /// vertex domain, so overlapping inserts, no-op deletes, re-inserts of
    /// tombstoned rows and deletes of pending inserts all occur.
    #[test]
    fn mutated_sessions_answer_like_rebuilt_catalogs(
        base in prop::collection::btree_set((0u32..24, 0u32..24), 1..140),
        batches in prop::collection::vec(
            (
                prop::collection::btree_set((0u32..24, 0u32..24), 0..30),
                prop::collection::btree_set((0u32..24, 0u32..24), 0..30),
            ),
            1..4,
        ),
        pattern_idx in 0usize..Pattern::PAPER.len(),
    ) {
        check_scenario(&base, &batches, Pattern::PAPER[pattern_idx]);
    }
}

/// A deterministic scenario covering every paper pattern with a batch
/// sequence that exercises each normal-form edge: overlap with the base,
/// delete-then-reinsert across batches, delete of a pending insert, and a
/// batch that nets out to nothing.
#[test]
fn handcrafted_batches_cover_all_patterns() {
    let base: BTreeSet<Edge> = (0..10u32)
        .flat_map(|a| [(a, (a + 1) % 10), (a, (a + 3) % 10)])
        .collect();
    let batches: Vec<(BTreeSet<Edge>, BTreeSet<Edge>)> = vec![
        // Overlapping inserts (some already in base) + real deletes.
        (
            [(0, 1), (4, 9), (9, 4)].into_iter().collect(),
            [(1, 2), (2, 5)].into_iter().collect(),
        ),
        // Re-insert a tombstoned row, delete a pending insert.
        (
            [(1, 2)].into_iter().collect(),
            [(4, 9)].into_iter().collect(),
        ),
        // A no-op batch: re-insert live rows, delete absent rows.
        (
            [(0, 1), (1, 2)].into_iter().collect(),
            [(20, 20), (2, 5)].into_iter().collect(),
        ),
    ];
    for pattern in Pattern::PAPER {
        check_scenario(&base, &batches, pattern);
    }
}

/// Empty deltas must be invisible: an empty `DeltaMap` and a map holding
/// an explicitly empty delta both leave every engine on its frozen
/// fast path with the exact base answer.
#[test]
fn empty_deltas_are_invisible_to_every_engine() {
    let base: BTreeSet<Edge> = (0..12u32)
        .flat_map(|a| (0..12u32).filter(move |&b| b != a).map(move |b| (a, b)))
        .collect();
    let mut catalog = Catalog::new();
    catalog.insert("G", relation_of(&base));
    let empty_map = DeltaMap::new();
    let mut explicit = DeltaMap::new();
    explicit.insert(
        "G".to_owned(),
        triejax_relation::RelationDelta::empty(2).unwrap(),
    );
    for pattern in Pattern::PAPER {
        let plan = CompiledQuery::compile(&pattern.query()).expect("compiles");
        let expect = rebuilt_reference(&base, &plan);
        check_every_engine(&catalog, &empty_map, &plan, &expect, "no deltas");
        check_every_engine(&catalog, &explicit, &plan, &expect, "empty delta");
    }
}

/// Delta-only relations (created by `apply`, base trie absent — the
/// frozen base is empty) must answer identically through every engine.
#[test]
fn delta_only_relations_serve_every_engine() {
    let edges: BTreeSet<Edge> = (0..10u32)
        .flat_map(|a| [(a, (a + 1) % 10), (a, (a + 4) % 10), ((a + 2) % 10, a)])
        .collect();
    let session = Session::new(Catalog::new())
        .with_pool(2)
        .with_compact_ratio(f64::INFINITY);
    session
        .apply("G", &relation_of(&edges), &Relation::new(2).unwrap())
        .expect("apply creates the relation");
    assert!(
        session.catalog().get("G").unwrap().is_empty(),
        "all tuples live in the delta"
    );
    for pattern in Pattern::PAPER {
        let plan = CompiledQuery::compile(&pattern.query()).expect("compiles");
        let expect = rebuilt_reference(&edges, &plan);
        check_every_engine(
            &session.catalog(),
            &session.deltas(),
            &plan,
            &expect,
            "delta-only",
        );
        let streamed: Vec<Vec<u32>> = session.query(&plan).stream().collect();
        assert_eq!(streamed, expect, "{pattern}: delta-only stream");
    }
}
