//! Cross-crate agreement: every software engine and the cycle-level
//! simulator must produce identical result sets on every query, for both
//! structured datasets and randomized graphs.

use proptest::prelude::*;
use triejax::{TrieJax, TrieJaxConfig};
use triejax_graph::{Dataset, Scale};
use triejax_join::{
    Catalog, CollectSink, CountSink, Ctj, GenericJoin, JoinEngine, Lftj, PairwiseHash,
    PairwiseSortMerge,
};
use triejax_query::{patterns::Pattern, CompiledQuery};
use triejax_relation::Relation;

fn engines() -> Vec<Box<dyn JoinEngine>> {
    vec![
        Box::new(Lftj::new()),
        Box::new(Ctj::new()),
        Box::new(GenericJoin::new()),
        Box::new(PairwiseHash::new()),
        Box::new(PairwiseSortMerge::new()),
    ]
}

#[test]
fn all_systems_agree_on_every_pattern_and_dataset() {
    for d in [Dataset::GrQc, Dataset::Bitcoin, Dataset::Gnutella04] {
        let mut catalog = Catalog::new();
        catalog.insert("G", d.generate(Scale::Tiny).edge_relation());
        for p in Pattern::PAPER {
            let plan = CompiledQuery::compile(&p.query()).expect("compiles");
            let mut reference = CountSink::default();
            Lftj::new()
                .execute(&plan, &catalog, &mut reference)
                .expect("runs");
            for mut e in engines() {
                let mut sink = CountSink::default();
                e.execute(&plan, &catalog, &mut sink).expect("runs");
                assert_eq!(
                    sink.count(),
                    reference.count(),
                    "{} on {d} via {}",
                    p,
                    e.name()
                );
            }
            let report = TrieJax::new(TrieJaxConfig::default())
                .run(&plan, &catalog)
                .expect("runs");
            assert_eq!(
                report.results,
                reference.count(),
                "{p} on {d} via simulator"
            );
        }
    }
}

#[test]
fn extension_patterns_agree_too() {
    let mut catalog = Catalog::new();
    catalog.insert("G", Dataset::GrQc.generate(Scale::Tiny).edge_relation());
    for p in [Pattern::Path5, Pattern::Cycle5, Pattern::Star3] {
        let plan = CompiledQuery::compile(&p.query()).expect("compiles");
        let mut reference = CountSink::default();
        Lftj::new()
            .execute(&plan, &catalog, &mut reference)
            .expect("runs");
        for mut e in engines() {
            let mut sink = CountSink::default();
            e.execute(&plan, &catalog, &mut sink).expect("runs");
            assert_eq!(sink.count(), reference.count(), "{p} via {}", e.name());
        }
        let report = TrieJax::new(TrieJaxConfig::default())
            .run(&plan, &catalog)
            .expect("runs");
        assert_eq!(report.results, reference.count(), "{p} via simulator");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On arbitrary random graphs, all five systems return the same
    /// *sorted tuple sets*, not just counts.
    #[test]
    fn agreement_on_random_graphs(
        edges in prop::collection::btree_set((0u32..24, 0u32..24), 1..120),
        pattern_idx in 0usize..Pattern::PAPER.len(),
    ) {
        let edges: Vec<(u32, u32)> = edges.into_iter().filter(|(a, b)| a != b).collect();
        prop_assume!(!edges.is_empty());
        let mut catalog = Catalog::new();
        catalog.insert("G", Relation::from_pairs(edges));
        let pattern = Pattern::PAPER[pattern_idx];
        let plan = CompiledQuery::compile(&pattern.query()).expect("compiles");

        let mut reference = CollectSink::new();
        Lftj::new().execute(&plan, &catalog, &mut reference).expect("runs");
        let reference = reference.into_sorted();

        for mut e in engines() {
            let mut sink = CollectSink::new();
            e.execute(&plan, &catalog, &mut sink).expect("runs");
            prop_assert_eq!(sink.into_sorted(), reference.clone(), "{}", e.name());
        }

        let mut hw = CollectSink::new();
        TrieJax::new(TrieJaxConfig::default())
            .run_with_sink(&plan, &catalog, &mut hw)
            .expect("runs");
        prop_assert_eq!(hw.into_sorted(), reference, "simulator");
    }

    /// WCOJ premise (Figure 18): on the multi-join queries the paper
    /// plots (Path4/Cycle4/Clique4), CTJ materializes at most as many
    /// intermediates as the pairwise plan, up to a small additive slack
    /// for degenerate graphs whose pairwise plan dies early.
    #[test]
    fn ctj_intermediates_bounded_by_pairwise(
        edges in prop::collection::btree_set((0u32..20, 0u32..20), 1..100),
        pattern_idx in 0usize..3,
    ) {
        let edges: Vec<(u32, u32)> = edges.into_iter().filter(|(a, b)| a != b).collect();
        prop_assume!(!edges.is_empty());
        let mut catalog = Catalog::new();
        catalog.insert("G", Relation::from_pairs(edges));
        let pattern = [Pattern::Path4, Pattern::Cycle4, Pattern::Clique4][pattern_idx];
        let plan = CompiledQuery::compile(&pattern.query()).expect("compiles");
        let mut s1 = CountSink::default();
        let ctj = Ctj::new().execute(&plan, &catalog, &mut s1).expect("runs");
        let mut s2 = CountSink::default();
        let pw = PairwiseHash::new().execute(&plan, &catalog, &mut s2).expect("runs");
        prop_assert!(ctj.intermediates <= pw.intermediates * 2 + 16,
            "ctj {} vs pairwise {}", ctj.intermediates, pw.intermediates);
    }
}
