//! Deterministic fault injection against the parallel runtime (compiled
//! only with `--features faults`): injected panics, delays, and failed
//! handoffs at every event class must never hang the ordered drain, never
//! leak a merge lane, and never corrupt shared-cache accounting. A
//! panicked run surfaces its payload to the caller (the pool rethrows
//! after the drain completes), and the very next clean run must be exact
//! — nothing a dying worker did may outlive its run.

#![cfg(feature = "faults")]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use triejax_join::faults::{self, FaultAction, FaultEvent, FaultPlan, FaultRule};
use triejax_join::{
    CancelReason, Catalog, CollectSink, CountSink, JoinEngine, JoinError, Lftj, ParCtj, ParLftj,
};
use triejax_query::{patterns::Pattern, CompiledQuery};
use triejax_relation::Relation;

/// Fires `action` on the first occurrence of `event` on any worker.
fn first(event: FaultEvent, action: FaultAction) -> FaultRule {
    FaultRule {
        worker: None,
        event,
        ordinal: 0,
        action,
    }
}

fn catalog_from(edges: Vec<(u32, u32)>) -> Catalog {
    let mut c = Catalog::new();
    c.insert("G", Relation::from_pairs(edges));
    c
}

/// Hub star (every vertex joined to 0, both ways): enough root-level
/// work for splits, steals, and cache traffic to actually occur.
fn hub_edges() -> Vec<(u32, u32)> {
    let mut edges = Vec::new();
    for i in 1..220u32 {
        edges.push((0, i));
        edges.push((i, 0));
    }
    edges
}

/// Funnel graph for CTJ cache accounting: 30 parents share one hub whose
/// entry is built once, so lookups are exactly predictable.
fn funnel_edges() -> Vec<(u32, u32)> {
    let mut edges = Vec::new();
    for x in 0..30u32 {
        edges.push((x, 100));
    }
    for z in 200..220u32 {
        edges.push((100, z));
    }
    edges
}

fn reference_tuples(plan: &CompiledQuery, catalog: &Catalog) -> Vec<Vec<u32>> {
    let mut sink = CollectSink::new();
    Lftj::new().execute(plan, catalog, &mut sink).expect("runs");
    sink.tuples().to_vec()
}

/// Asserts a caught panic payload is ours, not an incidental one.
fn assert_injected(payload: Box<dyn std::any::Any + Send>) {
    let text = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_default();
    assert!(
        text.contains("injected fault"),
        "panic was not the injected one: {text:?}"
    );
}

/// A panic injected at each event class the LFTJ runtime passes through:
/// the run either completes exactly (the site was never reached on this
/// schedule — e.g. no steal happened) or surfaces the injected payload —
/// and in both cases the drain terminates and the very next clean run is
/// exact. A hang here is the failure mode this harness exists to catch.
#[test]
fn injected_panics_never_hang_the_drain() {
    let catalog = catalog_from(hub_edges());
    let plan = CompiledQuery::compile(&Pattern::Path3.query()).expect("compiles");
    let reference = reference_tuples(&plan, &catalog);
    for event in [
        FaultEvent::TaskStart,
        FaultEvent::Steal,
        FaultEvent::SplitHandoff,
        FaultEvent::MergePush,
    ] {
        for action in [FaultAction::Panic, FaultAction::FailHandoff] {
            let guard = faults::install(FaultPlan::new().rule(first(event, action)));
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let mut sink = CollectSink::new();
                ParLftj::with_pool(4)
                    .with_granularity(1)
                    .with_split(true)
                    .execute(&plan, &catalog, &mut sink)
                    .expect("a faulted run that completes completes cleanly");
                sink
            }));
            drop(guard);
            match outcome {
                Ok(sink) => assert_eq!(
                    sink.tuples(),
                    reference,
                    "{event:?}/{action:?}: untripped run must be exact"
                ),
                Err(payload) => assert_injected(payload),
            }
            // Whatever the dying worker left behind must not outlive its
            // run: the next clean run is exact.
            let mut clean = CollectSink::new();
            ParLftj::with_pool(4)
                .with_granularity(1)
                .with_split(true)
                .execute(&plan, &catalog, &mut clean)
                .expect("clean run");
            assert_eq!(
                clean.tuples(),
                reference,
                "{event:?}/{action:?}: post-fault"
            );
        }
    }
}

/// A worker dying between its cache miss and its insert (panic at the
/// publish site) must not corrupt the shared store: the run surfaces the
/// panic, and a fresh run's books balance exactly — the hub entry is
/// built once and every other lookup hits it.
#[test]
fn cache_insert_panic_leaves_accounting_consistent() {
    let catalog = catalog_from(funnel_edges());
    let plan = CompiledQuery::compile(&Pattern::Path3.query()).expect("compiles");
    let reference = reference_tuples(&plan, &catalog);
    let guard =
        faults::install(FaultPlan::new().rule(first(FaultEvent::CacheInsert, FaultAction::Panic)));
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut sink = CountSink::default();
        ParCtj::with_pool(2)
            .execute(&plan, &catalog, &mut sink)
            .expect("a faulted run that completes completes cleanly");
    }));
    drop(guard);
    match outcome {
        // Publish always happens on this fixture, so the rule must fire.
        Ok(()) => panic!("the first cache insert must have tripped the fault"),
        Err(payload) => assert_injected(payload),
    }
    let mut sink = CollectSink::new();
    let stats = ParCtj::with_pool(2)
        .execute(&plan, &catalog, &mut sink)
        .expect("clean run");
    assert_eq!(sink.tuples(), reference);
    assert_eq!(
        stats.cache_hits + stats.cache_misses,
        30,
        "one lookup per parent; races reclassify, they never double-count"
    );
    assert_eq!(stats.cache_misses, 1, "the hub entry is built exactly once");
}

/// Delaying the first publish widens the lookup→insert window so sibling
/// workers race the build. First-writer-wins must keep the run exact and
/// the books balanced: hits + misses still equals the lookup count, with
/// any duplicate build reclassified as a race, not a second miss.
#[test]
fn delayed_cache_insert_keeps_racing_books_balanced() {
    let catalog = catalog_from(funnel_edges());
    let plan = CompiledQuery::compile(&Pattern::Path3.query()).expect("compiles");
    let reference = reference_tuples(&plan, &catalog);
    let guard = faults::install(
        FaultPlan::new().rule(first(FaultEvent::CacheInsert, FaultAction::Delay(5))),
    );
    let mut sink = CollectSink::new();
    let stats = ParCtj::with_pool(2)
        .execute(&plan, &catalog, &mut sink)
        .expect("delays never fail a run");
    drop(guard);
    assert_eq!(sink.tuples(), reference);
    assert_eq!(stats.cache_hits + stats.cache_misses, 30);
    assert_eq!(stats.cache_misses, 1);
}

/// The tentpole race: the budget trips while a split handoff is in
/// flight — the new merge lane is open but its task not yet spawned (the
/// injected delay pins the window). The drain must still terminate and
/// deliver the exact ordered prefix.
#[test]
fn budget_trip_during_inflight_handoff_keeps_the_prefix_exact() {
    let catalog = catalog_from(hub_edges());
    let plan = CompiledQuery::compile(&Pattern::Path3.query()).expect("compiles");
    let reference = reference_tuples(&plan, &catalog);
    for limit in [1u64, 5, 40] {
        let guard = faults::install(
            FaultPlan::new().rule(first(FaultEvent::SplitHandoff, FaultAction::Delay(3))),
        );
        let mut sink = CollectSink::new();
        let err = ParLftj::with_pool(4)
            .with_granularity(1)
            .with_split(true)
            .with_row_limit(limit)
            .execute(&plan, &catalog, &mut sink)
            .expect_err("limit below total must cancel");
        drop(guard);
        match err {
            JoinError::Cancelled { reason, .. } => {
                assert_eq!(reason, CancelReason::RowLimit, "limit={limit}")
            }
            other => panic!("limit={limit}: wrong error {other:?}"),
        }
        assert_eq!(
            sink.tuples(),
            &reference[..limit as usize],
            "limit={limit}: prefix must survive the in-flight handoff"
        );
    }
}

/// A failed handoff during a deadline-cancelled run: the handoff site
/// closes its freshly opened lane before panicking, so even the
/// combination of an injected handoff failure and a tripping budget
/// leaves no lane for the drain to wait on.
#[test]
fn failed_handoff_under_a_deadline_never_hangs() {
    let catalog = catalog_from(hub_edges());
    let plan = CompiledQuery::compile(&Pattern::Path3.query()).expect("compiles");
    let guard = faults::install(
        FaultPlan::new().rule(first(FaultEvent::SplitHandoff, FaultAction::FailHandoff)),
    );
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut sink = CollectSink::new();
        let _ = ParLftj::with_pool(4)
            .with_granularity(1)
            .with_split(true)
            .with_deadline(Duration::from_millis(1))
            .execute(&plan, &catalog, &mut sink);
    }));
    drop(guard);
    if let Err(payload) = outcome {
        assert_injected(payload);
    }
}

/// A handoff failing at depth >= 1: the fixture's root domain is a single
/// value, so the only handoffs a splitting run can attempt are sub-root
/// ones — the window where the tail lane is open (and, uniquely for deep
/// handoffs, the continuation lane about to be) but the task not yet
/// spawned. The injected failure must close the fresh lane before
/// unwinding, so the drain terminates, and the very next clean run must
/// be exact and actually exercise the deep path it just survived.
#[test]
fn failed_deep_handoff_never_hangs_and_recovers_exactly() {
    use triejax_query::Query;

    let q = Query::builder("deep_fault")
        .head(["x", "y", "z"])
        .atom("R", ["x", "y"])
        .atom("S", ["y", "z"])
        .build()
        .unwrap();
    let plan = CompiledQuery::compile(&q).expect("compiles");
    let mut catalog = Catalog::new();
    catalog.insert(
        "R",
        Relation::from_pairs((0..260u32).map(|y| (0, y)).collect::<Vec<_>>()),
    );
    let mut s: Vec<(u32, u32)> = (0..26_000u32).map(|z| (0, z)).collect();
    for y in 1..260u32 {
        for z in 0..4u32 {
            s.push((y, (y * 31 + z) % 260));
        }
    }
    catalog.insert("S", Relation::from_pairs(s));
    let reference = reference_tuples(&plan, &catalog);

    for action in [FaultAction::Panic, FaultAction::FailHandoff] {
        let guard = faults::install(FaultPlan::new().rule(first(FaultEvent::SplitHandoff, action)));
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut sink = CollectSink::new();
            ParLftj::with_pool(4)
                .with_granularity(1)
                .with_split(true)
                .with_split_depth(usize::MAX)
                .execute(&plan, &catalog, &mut sink)
                .expect("a faulted run that completes completes cleanly");
            sink
        }));
        drop(guard);
        match outcome {
            Ok(sink) => assert_eq!(
                sink.tuples(),
                reference,
                "{action:?}: untripped run must be exact"
            ),
            Err(payload) => assert_injected(payload),
        }
        let mut clean = CollectSink::new();
        let stats = ParLftj::with_pool(4)
            .with_granularity(1)
            .with_split(true)
            .with_split_depth(usize::MAX)
            .execute(&plan, &catalog, &mut clean)
            .expect("clean run");
        assert_eq!(clean.tuples(), reference, "{action:?}: post-fault");
        assert!(
            stats.deep_splits > 0,
            "{action:?}: the clean run must take the sub-root path \
             (root domain is 1, so every handoff here is deep)"
        );
    }
}

/// A trie build task dying on the pool (panic at the `TrieBuild` site)
/// must surface the injected payload — never hang the run — and leave
/// no half-built trie behind: the shared trie cache stays empty, and
/// the very next clean run over the same cache is exact and fills it
/// normally.
#[test]
fn trie_build_panic_surfaces_and_leaves_the_trie_cache_clean() {
    use std::sync::Arc;
    use triejax_join::TrieCache;

    let catalog = catalog_from(hub_edges());
    // cycle3 needs two distinct (relation, perm) builds, so the build
    // phase goes through the pool — the panic must be captured by a
    // worker and rethrown after the scope, not swallowed or deadlocked.
    let plan = CompiledQuery::compile(&Pattern::Cycle3.query()).expect("compiles");
    let reference = reference_tuples(&plan, &catalog);
    let cache = Arc::new(TrieCache::unbounded());

    let guard =
        faults::install(FaultPlan::new().rule(first(FaultEvent::TrieBuild, FaultAction::Panic)));
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut sink = CollectSink::new();
        let _ = ParLftj::with_pool(4)
            .with_trie_cache(cache.clone())
            .execute(&plan, &catalog, &mut sink);
    }));
    drop(guard);
    match outcome {
        // Every run of this plan builds tries, so the rule always trips.
        Ok(()) => panic!("the first trie build must have tripped the fault"),
        Err(payload) => assert_injected(payload),
    }
    assert_eq!(cache.len(), 0, "a dying build phase must publish nothing");
    assert_eq!(cache.insertions(), 0);

    let mut clean = CollectSink::new();
    let stats = ParLftj::with_pool(4)
        .with_trie_cache(cache.clone())
        .execute(&plan, &catalog, &mut clean)
        .expect("clean run");
    assert_eq!(clean.tuples(), reference, "post-fault run must be exact");
    assert_eq!(stats.trie_cache_hits, 0, "nothing to hit after the wipe");
    assert_eq!(cache.insertions(), 2, "both distinct builds fill the cache");
}

/// Seed-driven sweep: deterministic plans drawn over all six event
/// classes. Every schedule must terminate; completed runs must be exact.
/// A failure replays from its seed alone.
#[test]
fn seeded_fault_sweep_terminates_and_stays_exact() {
    let catalog = catalog_from(hub_edges());
    let plan = CompiledQuery::compile(&Pattern::Path3.query()).expect("compiles");
    let reference = reference_tuples(&plan, &catalog);
    let events = [
        FaultEvent::TaskStart,
        FaultEvent::Steal,
        FaultEvent::SplitHandoff,
        FaultEvent::CacheInsert,
        FaultEvent::MergePush,
        FaultEvent::TrieBuild,
    ];
    for seed in 0..12u64 {
        let guard = faults::install(FaultPlan::from_seed(seed, &events, 4));
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut sink = CollectSink::new();
            ParCtj::with_pool(4)
                .with_split(true)
                .with_granularity(1)
                .execute(&plan, &catalog, &mut sink)
                .expect("a faulted run that completes completes cleanly");
            sink
        }));
        drop(guard);
        match outcome {
            Ok(sink) => assert_eq!(sink.tuples(), reference, "seed {seed}"),
            Err(payload) => assert_injected(payload),
        }
    }
}

/// A fault at the `DeltaApply` point — fired after the new session state
/// is fully computed but **before** it is swapped in — must leave the
/// session at its prior epoch: same catalog, same deltas, no watcher
/// update. The very next clean apply must succeed (the injected panic may
/// not wedge the apply lock) and deliver exactly its own increment.
#[test]
fn killed_apply_leaves_the_session_at_the_prior_epoch() {
    use std::sync::Arc;
    use triejax_join::Session;

    let session = Session::new(catalog_from(hub_edges()))
        .with_pool(2)
        .with_compact_ratio(f64::INFINITY);
    let plan = CompiledQuery::compile(&Pattern::Cycle3.query()).expect("compiles");
    let watch = session.watch(&plan).expect("watchable");

    // One clean apply first, so the pre-fault state is non-trivial (a
    // pending delta exists and the epoch is past zero).
    session
        .apply(
            "G",
            &Relation::from_pairs(vec![(221, 222)]),
            &Relation::new(2).unwrap(),
        )
        .expect("clean apply");
    assert!(watch.poll().is_some(), "clean apply notifies");

    let epoch_before = session.epoch();
    let catalog_before = session.catalog();
    let deltas_before = session.deltas();

    let guard =
        faults::install(FaultPlan::new().rule(first(FaultEvent::DeltaApply, FaultAction::Panic)));
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        session.apply(
            "G",
            &Relation::from_pairs(vec![(300, 301), (301, 302)]),
            &Relation::from_pairs(vec![(221, 222)]),
        )
    }));
    drop(guard);
    assert_injected(outcome.expect_err("the injected panic surfaces to the caller"));

    // Nothing moved: the epoch, the catalog generation, and the pending
    // deltas are exactly the pre-fault ones, and no update was emitted.
    assert_eq!(session.epoch(), epoch_before);
    assert!(
        Arc::ptr_eq(&session.catalog(), &catalog_before),
        "the catalog generation must be the pre-fault one"
    );
    assert_eq!(*session.deltas(), *deltas_before);
    assert!(watch.poll().is_none(), "a failed apply never notifies");

    // The session is not wedged: the retry lands with the next epoch and
    // the watcher hears exactly this batch.
    let epoch = session
        .apply(
            "G",
            &Relation::from_pairs(vec![(0, 221), (221, 1)]),
            &Relation::new(2).unwrap(),
        )
        .expect("retry succeeds after the injected fault");
    assert_eq!(epoch, epoch_before + 1);
    let update = watch.poll().expect("retry notifies");
    assert_eq!(update.epoch, epoch);
    assert!(
        !update.rows.is_empty(),
        "0→221→1→0 closes a new triangle through the hub"
    );
}
