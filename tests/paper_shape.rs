//! Shape-level assertions of the paper's evaluation claims, at tiny scale.
//! These pin the *qualitative* reproduction: who wins, where crossovers
//! fall, and which effects exist at all.

use triejax::{TrieJax, TrieJaxConfig};
use triejax_baselines::{BaselineSystem, CtjSoftware, EmptyHeaded, Graphicionado, Q100};
use triejax_graph::{Dataset, Scale};
use triejax_join::Catalog;
use triejax_query::{patterns::Pattern, CompiledQuery};

fn catalog(d: Dataset) -> Catalog {
    let mut c = Catalog::new();
    c.insert("G", d.generate(Scale::Tiny).edge_relation());
    c
}

#[test]
fn triejax_beats_software_ctj_everywhere() {
    // Paper Figure 13: 5.5x - 45x across all cells.
    for d in [Dataset::GrQc, Dataset::WikiVote, Dataset::Gnutella04] {
        let c = catalog(d);
        for p in Pattern::PAPER {
            let plan = CompiledQuery::compile(&p.query()).unwrap();
            let hw = TrieJax::new(TrieJaxConfig::default())
                .run(&plan, &c)
                .unwrap();
            let sw = CtjSoftware::new().evaluate(&plan, &c).unwrap();
            let speedup = sw.time_s / hw.runtime_s;
            assert!(
                speedup > 3.0,
                "{p} on {d}: speedup {speedup:.1} below the paper band"
            );
        }
    }
}

#[test]
fn q100_is_comparable_on_path3_and_crushed_on_clique4() {
    // Paper §4.3: "the Q100 performance on the Path3 query is comparable
    // to TrieJax for most datasets, TrieJax outperforms Q100 by up to
    // 539x on complex queries such as Clique4".
    let c = catalog(Dataset::WikiVote);
    let accel = TrieJax::new(TrieJaxConfig::default());
    let path3 = CompiledQuery::compile(&Pattern::Path3.query()).unwrap();
    let clique4 = CompiledQuery::compile(&Pattern::Clique4.query()).unwrap();
    let s_path3 =
        Q100::new().evaluate(&path3, &c).unwrap().time_s / accel.run(&path3, &c).unwrap().runtime_s;
    let s_clique4 = Q100::new().evaluate(&clique4, &c).unwrap().time_s
        / accel.run(&clique4, &c).unwrap().runtime_s;
    assert!(
        s_path3 < 5.0,
        "path3 should be comparable, got {s_path3:.1}x"
    );
    assert!(
        s_clique4 > 50.0,
        "clique4 should explode, got {s_clique4:.1}x"
    );
    assert!(s_clique4 > 20.0 * s_path3);
}

#[test]
fn graphicionado_wins_path4_on_social_graphs_and_loses_cyclic() {
    // Paper §4.3: "Graphicionado was able to perform faster on the Path4
    // wiki and Path4 Facebook queries ... by up to 1.25x", while TrieJax
    // wins everywhere else that matters.
    let accel = TrieJax::new(TrieJaxConfig::default());
    for d in [Dataset::WikiVote, Dataset::Facebook] {
        let c = catalog(d);
        let path4 = CompiledQuery::compile(&Pattern::Path4.query()).unwrap();
        let g = Graphicionado::new().evaluate(&path4, &c).unwrap().time_s;
        let t = accel.run(&path4, &c).unwrap().runtime_s;
        assert!(g < t, "graphicionado should edge out TrieJax on path4 {d}");
        let cycle4 = CompiledQuery::compile(&Pattern::Cycle4.query()).unwrap();
        let g = Graphicionado::new().evaluate(&cycle4, &c).unwrap().time_s;
        let t = accel.run(&cycle4, &c).unwrap().runtime_s;
        assert!(
            g > 5.0 * t,
            "cyclic queries explode on the message model ({d})"
        );
    }
}

#[test]
fn emptyheaded_sits_between_ctj_and_triejax() {
    // Paper: TrieJax is 9x over EmptyHeaded but 20x over CTJ, i.e.
    // EmptyHeaded is the stronger software baseline.
    let c = catalog(Dataset::Bitcoin);
    for p in [Pattern::Cycle3, Pattern::Cycle4, Pattern::Clique4] {
        let plan = CompiledQuery::compile(&p.query()).unwrap();
        let eh = EmptyHeaded::new().evaluate(&plan, &c).unwrap();
        let ctj = CtjSoftware::new().evaluate(&plan, &c).unwrap();
        assert!(eh.time_s < ctj.time_s, "{p}: EmptyHeaded should beat CTJ");
    }
}

#[test]
fn energy_ranking_matches_figure_16() {
    // TrieJax uses the least energy; among baselines, Graphicionado is the
    // most efficient accelerator class on simple queries, Q100 the worst
    // on complex ones.
    let c = catalog(Dataset::WikiVote);
    let plan = CompiledQuery::compile(&Pattern::Cycle4.query()).unwrap();
    let t = TrieJax::new(TrieJaxConfig::default())
        .run(&plan, &c)
        .unwrap()
        .energy_j();
    for (name, e) in [
        (
            "ctj",
            CtjSoftware::new().evaluate(&plan, &c).unwrap().energy_j,
        ),
        (
            "emptyheaded",
            EmptyHeaded::new().evaluate(&plan, &c).unwrap().energy_j,
        ),
        ("q100", Q100::new().evaluate(&plan, &c).unwrap().energy_j),
        (
            "graphicionado",
            Graphicionado::new().evaluate(&plan, &c).unwrap().energy_j,
        ),
    ] {
        assert!(
            e > 3.0 * t,
            "{name} should consume several times more energy"
        );
    }
}

#[test]
fn mt_speedup_band_matches_figure_14() {
    // Paper §4.2: 8 threads ~5.8x, 32 threads ~10.8x over one thread.
    let c = catalog(Dataset::Bitcoin);
    let plan = CompiledQuery::compile(&Pattern::Cycle4.query()).unwrap();
    let c1 = TrieJax::new(TrieJaxConfig::default().with_threads(1))
        .run(&plan, &c)
        .unwrap()
        .cycles as f64;
    let c8 = TrieJax::new(TrieJaxConfig::default().with_threads(8))
        .run(&plan, &c)
        .unwrap()
        .cycles as f64;
    let c32 = TrieJax::new(TrieJaxConfig::default().with_threads(32))
        .run(&plan, &c)
        .unwrap()
        .cycles as f64;
    let s8 = c1 / c8;
    let s32 = c1 / c32;
    assert!(s8 > 3.0 && s8 < 8.0, "8T speedup {s8:.1} outside band");
    assert!(s32 > s8, "32T ({s32:.1}) must beat 8T ({s8:.1})");
}

#[test]
fn write_bypass_matters_exactly_on_result_heavy_queries() {
    // Paper §3.1: up to 2.5x on path4; negligible on low-output queries.
    let c = catalog(Dataset::Facebook);
    let accel_on = TrieJax::new(TrieJaxConfig::default());
    let accel_off = TrieJax::new(TrieJaxConfig::default().with_write_bypass(false));
    let path4 = CompiledQuery::compile(&Pattern::Path4.query()).unwrap();
    let gain_path4 = accel_off.run(&path4, &c).unwrap().cycles as f64
        / accel_on.run(&path4, &c).unwrap().cycles as f64;
    assert!(
        gain_path4 > 1.5,
        "path4 bypass gain {gain_path4:.2} too small"
    );
    let cycle3 = CompiledQuery::compile(&Pattern::Cycle3.query()).unwrap();
    let gain_cycle3 = accel_off.run(&cycle3, &c).unwrap().cycles as f64
        / accel_on.run(&cycle3, &c).unwrap().cycles as f64;
    assert!(gain_cycle3 < gain_path4, "bypass must matter most on path4");
}

#[test]
fn memory_system_dominates_energy_on_every_query() {
    // Paper Figure 15: 74-90% of energy goes to the memory system.
    let c = catalog(Dataset::GrQc);
    for p in Pattern::PAPER {
        let plan = CompiledQuery::compile(&p.query()).unwrap();
        let r = TrieJax::new(TrieJaxConfig::default())
            .run(&plan, &c)
            .unwrap();
        assert!(
            r.energy.memory_fraction() > 0.6,
            "{p}: memory fraction {:.2}",
            r.energy.memory_fraction()
        );
    }
}
