//! The pool-based parallel engines must be **tuple-for-tuple identical**
//! (same tuples, same order) to their sequential counterparts — on uniform
//! random graphs and on power-law-skewed ones where a few hub roots carry
//! most of the work and the pool's work stealing actually rebalances — at
//! pool sizes 1, 2 and 7, in both `Counting` and `NoTally` modes.

use proptest::prelude::*;
use triejax_join::{
    Catalog, CollectSink, Counting, Ctj, JoinEngine, Lftj, NoTally, ParCtj, ParLftj,
};
use triejax_query::{patterns::Pattern, CompiledQuery};
use triejax_relation::Relation;

const POOL_SIZES: [usize; 3] = [1, 2, 7];

fn catalog_from(edges: Vec<(u32, u32)>) -> Catalog {
    let mut c = Catalog::new();
    c.insert("G", Relation::from_pairs(edges));
    c
}

/// Cubing a uniform sample in [0, 1) concentrates mass near zero: low
/// vertex ids become heavy hubs, giving the skewed (power-law-ish) root
/// domains the work-stealing pool exists for.
fn power_law(raw: u64, n: u32) -> u32 {
    let u = (raw % 1_000_000) as f64 / 1_000_000.0;
    ((u * u * u) * f64::from(n)) as u32
}

/// Runs one engine body and returns its ordered tuple stream plus the
/// result count it reported in its stats.
fn run_collect(
    engine: &mut dyn FnMut(&CompiledQuery, &Catalog, &mut CollectSink) -> u64,
    plan: &CompiledQuery,
    catalog: &Catalog,
) -> (Vec<Vec<u32>>, u64) {
    let mut sink = CollectSink::new();
    let results = engine(plan, catalog, &mut sink);
    (sink.tuples().to_vec(), results)
}

fn check_all_parallel_engines(catalog: &Catalog, pattern: Pattern) {
    let plan = CompiledQuery::compile(&pattern.query()).expect("compiles");

    let mut lftj_sink = CollectSink::new();
    Lftj::new()
        .execute(&plan, catalog, &mut lftj_sink)
        .expect("runs");
    let reference = lftj_sink.tuples();

    // CTJ's emission order equals LFTJ's (cache replay preserves the
    // recorded ascending order), which is what lane-ordered merging of
    // the parallel engines relies on; assert it as part of the property.
    let mut ctj_sink = CollectSink::new();
    Ctj::new()
        .execute(&plan, catalog, &mut ctj_sink)
        .expect("runs");
    assert_eq!(ctj_sink.tuples(), reference, "{pattern}: ctj order");

    for pool in POOL_SIZES {
        for counting in [true, false] {
            let (par_lftj, n1) = run_collect(
                &mut |p, c, s| {
                    let mut e = ParLftj::with_pool(pool);
                    if counting {
                        e.run_tallied::<Counting>(p, c, s).expect("runs").results
                    } else {
                        e.run_tallied::<NoTally>(p, c, s).expect("runs").results
                    }
                },
                &plan,
                catalog,
            );
            assert_eq!(
                par_lftj, reference,
                "{pattern}: parlftj pool={pool} counting={counting}"
            );
            assert_eq!(n1 as usize, reference.len());

            let (par_ctj, n2) = run_collect(
                &mut |p, c, s| {
                    let mut e = ParCtj::with_pool(pool);
                    if counting {
                        e.run_tallied::<Counting>(p, c, s).expect("runs").results
                    } else {
                        e.run_tallied::<NoTally>(p, c, s).expect("runs").results
                    }
                },
                &plan,
                catalog,
            );
            assert_eq!(
                par_ctj, reference,
                "{pattern}: parctj pool={pool} counting={counting}"
            );
            assert_eq!(n2 as usize, reference.len());
        }
    }
}

/// Forced-split mode: a single coarse seed on a 4-worker pool, so the
/// only way the run can use its workers is the dynamic split protocol —
/// a running shard observes an idle sibling at a root-level advance and
/// hands off the unvisited tail of its range. The merged stream must
/// stay tuple-for-tuple sequential regardless of how the range got
/// carved up. Returns the total splits observed (both engines, both
/// tally modes); when `require_splits` is set, every individual run must
/// have split at least once.
fn check_forced_split(catalog: &Catalog, pattern: Pattern, require_splits: bool) -> u64 {
    let plan = CompiledQuery::compile(&pattern.query()).expect("compiles");
    let mut ref_sink = CollectSink::new();
    Lftj::new()
        .execute(&plan, catalog, &mut ref_sink)
        .expect("runs");
    let reference = ref_sink.tuples();

    type SplitRun<'a> = (
        &'a str,
        &'a mut dyn FnMut(&mut CollectSink) -> (u64, u64, u64),
    );

    let mut total_splits = 0;
    for counting in [true, false] {
        let mut lftj_engine = ParLftj::with_pool(4).with_granularity(1).with_split(true);
        let mut ctj_engine = ParCtj::with_pool(4).with_granularity(1).with_split(true);
        let runs: [SplitRun<'_>; 2] = [
            ("parlftj", &mut |sink| {
                if counting {
                    let s = lftj_engine
                        .run_tallied::<Counting>(&plan, catalog, sink)
                        .expect("runs");
                    (s.splits, s.split_depth, s.shards)
                } else {
                    let s = lftj_engine
                        .run_tallied::<NoTally>(&plan, catalog, sink)
                        .expect("runs");
                    (s.splits, s.split_depth, s.shards)
                }
            }),
            ("parctj", &mut |sink| {
                if counting {
                    let s = ctj_engine
                        .run_tallied::<Counting>(&plan, catalog, sink)
                        .expect("runs");
                    (s.splits, s.split_depth, s.shards)
                } else {
                    let s = ctj_engine
                        .run_tallied::<NoTally>(&plan, catalog, sink)
                        .expect("runs");
                    (s.splits, s.split_depth, s.shards)
                }
            }),
        ];
        for (name, run) in runs {
            let mut sink = CollectSink::new();
            let (splits, depth, shards) = run(&mut sink);
            assert_eq!(
                sink.tuples(),
                reference,
                "{pattern}: {name} counting={counting} forced-split stream"
            );
            // Every split spawns exactly one shard beyond the seed, and a
            // handoff chain is at least one generation deep.
            assert_eq!(
                shards,
                1 + splits,
                "{pattern}: {name} counting={counting} shard accounting"
            );
            assert!(
                splits == 0 || depth >= 1,
                "{pattern}: {name} split without a recorded generation"
            );
            if require_splits {
                assert!(
                    splits > 0,
                    "{pattern}: {name} counting={counting} never split \
                     despite three idle workers"
                );
            }
            total_splits += splits;
        }
    }
    total_splits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Uniform random graphs: every pool size and tally mode agrees with
    /// the sequential engines, in emission order.
    #[test]
    fn parallel_engines_agree_on_random_graphs(
        edges in prop::collection::btree_set((0u32..24, 0u32..24), 1..140),
        pattern_idx in 0usize..Pattern::PAPER.len(),
    ) {
        let edges: Vec<(u32, u32)> = edges.into_iter().filter(|(a, b)| a != b).collect();
        prop_assume!(!edges.is_empty());
        let catalog = catalog_from(edges);
        check_all_parallel_engines(&catalog, Pattern::PAPER[pattern_idx]);
    }

    /// Power-law root domains: most edges hang off a few hub vertices, so
    /// shard work is heavily skewed and stolen shards must still merge in
    /// exact sequential order.
    #[test]
    fn parallel_engines_agree_on_skewed_graphs(
        raw in prop::collection::vec((0u64..1_000_000, 0u64..1_000_000), 20..160),
        pattern_idx in 0usize..Pattern::PAPER.len(),
    ) {
        let edges: Vec<(u32, u32)> = raw
            .into_iter()
            .map(|(a, b)| (power_law(a, 32), (power_law(b, 32) + 1) % 33))
            .filter(|(a, b)| a != b)
            .collect();
        prop_assume!(!edges.is_empty());
        let catalog = catalog_from(edges);
        check_all_parallel_engines(&catalog, Pattern::PAPER[pattern_idx]);
    }

    /// Forced-split runs agree on arbitrary skewed graphs too (splits may
    /// or may not fire on small inputs; the stream must be exact either
    /// way).
    #[test]
    fn forced_split_agrees_on_skewed_graphs(
        raw in prop::collection::vec((0u64..1_000_000, 0u64..1_000_000), 20..160),
        pattern_idx in 0usize..Pattern::PAPER.len(),
    ) {
        let edges: Vec<(u32, u32)> = raw
            .into_iter()
            .map(|(a, b)| (power_law(a, 32), (power_law(b, 32) + 1) % 33))
            .filter(|(a, b)| a != b)
            .collect();
        prop_assume!(!edges.is_empty());
        let catalog = catalog_from(edges);
        check_forced_split(&catalog, Pattern::PAPER[pattern_idx], false);
    }
}

/// The acceptance workload: coarse initial shards (a single seed), pool
/// of 4, power-law root domain heavy enough that the seed is still busy
/// long after its siblings park. Both engines must actually split, in
/// both tally modes, and still match the sequential stream exactly.
#[test]
fn forced_split_fires_and_stays_exact_on_power_law_hubs() {
    let mut edges = Vec::new();
    // A hub star (every vertex joined to vertex 0, both ways) plus a
    // power-law fringe: root 0's subtree dwarfs everything, so the seed
    // shard is guaranteed to still be running when its siblings go idle.
    for i in 1..220u32 {
        edges.push((0, i));
        edges.push((i, 0));
    }
    for i in 1..220u32 {
        edges.push((i, i / 2));
    }
    let catalog = catalog_from(edges);
    // Cycle3 completes before the sibling workers even park (a run too
    // short to rebalance is *supposed* to finish unsplit), so it only
    // checks exactness; Path4's root-0 subtree keeps the seed busy long
    // past every park, so it must split — in every engine and tally mode.
    check_forced_split(&catalog, Pattern::Cycle3, false);
    let splits = check_forced_split(&catalog, Pattern::Path4, true);
    assert!(splits > 0, "the hub workload must split");
}

/// A directed star: the worst root-domain skew (one hub joins everything).
/// Deterministic, so the heavy-hub path is exercised on every run.
#[test]
fn extreme_hub_skew_is_exact_at_every_pool_size() {
    let mut edges = Vec::new();
    for i in 1..200u32 {
        edges.push((0, i));
        edges.push((i, 0));
    }
    // A sparse fringe so sharding has more than one root value.
    for i in 1..40u32 {
        edges.push((i, i + 1));
    }
    let catalog = catalog_from(edges);
    for pattern in [Pattern::Cycle3, Pattern::Path4] {
        check_all_parallel_engines(&catalog, pattern);
    }
}
