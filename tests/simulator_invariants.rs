//! Invariants of the cycle-level simulator: determinism, schedule
//! independence of results, and bookkeeping conservation.

use triejax::{MtMode, TrieJax, TrieJaxConfig};
use triejax_graph::{Dataset, Scale};
use triejax_join::Catalog;
use triejax_query::{patterns::Pattern, CompiledQuery};

fn catalog(d: Dataset) -> Catalog {
    let mut c = Catalog::new();
    c.insert("G", d.generate(Scale::Tiny).edge_relation());
    c
}

#[test]
fn simulation_is_fully_deterministic() {
    let c = catalog(Dataset::Bitcoin);
    let plan = CompiledQuery::compile(&Pattern::Cycle4.query()).unwrap();
    let accel = TrieJax::new(TrieJaxConfig::default());
    let a = accel.run(&plan, &c).unwrap();
    let b = accel.run(&plan, &c).unwrap();
    assert_eq!(a, b, "two runs must produce identical reports");
}

#[test]
fn results_are_invariant_to_threads_mt_mode_and_pjr() {
    let c = catalog(Dataset::GrQc);
    for p in [Pattern::Path4, Pattern::Cycle4, Pattern::Clique4] {
        let plan = CompiledQuery::compile(&p.query()).unwrap();
        let reference = TrieJax::new(TrieJaxConfig::default())
            .run(&plan, &c)
            .unwrap()
            .results;
        let configs = [
            TrieJaxConfig::default().with_threads(1),
            TrieJaxConfig::default().with_threads(64),
            TrieJaxConfig::default().with_mt_mode(MtMode::Static),
            TrieJaxConfig::default().with_mt_mode(MtMode::Dynamic),
            TrieJaxConfig::default().with_pjr_enabled(false),
            TrieJaxConfig::default().with_pjr_bytes(16 << 10),
            TrieJaxConfig::default().with_write_bypass(false),
        ];
        for cfg in configs {
            let r = TrieJax::new(cfg.clone()).run(&plan, &c).unwrap();
            assert_eq!(r.results, reference, "{p} with {cfg:?}");
        }
    }
}

#[test]
fn energy_breakdown_is_conserved() {
    let c = catalog(Dataset::WikiVote);
    let plan = CompiledQuery::compile(&Pattern::Cycle4.query()).unwrap();
    let r = TrieJax::new(TrieJaxConfig::default())
        .run(&plan, &c)
        .unwrap();
    let e = &r.energy;
    let component_sum = e.core + e.pjr + e.l1 + e.l2 + e.llc + e.dram;
    assert!((r.energy_j() - component_sum).abs() < 1e-15);
    assert!(e.dram > 0.0 && e.core > 0.0 && e.l1 > 0.0);
    assert!(r.runtime_s > 0.0);
    assert_eq!(r.cycles, (r.runtime_s * 2.38e9).round() as u64);
}

#[test]
fn cache_hierarchy_bookkeeping_is_consistent() {
    let c = catalog(Dataset::Bitcoin);
    let plan = CompiledQuery::compile(&Pattern::Path4.query()).unwrap();
    let r = TrieJax::new(TrieJaxConfig::default())
        .run(&plan, &c)
        .unwrap();
    let m = &r.mem;
    // Every L2 access is an L1 miss; every LLC *read* access is an L2 miss
    // (writes bypass under the default config).
    assert_eq!(m.l2.accesses(), m.l1.misses);
    assert_eq!(m.llc.accesses(), m.l2.misses);
    assert_eq!(m.dram.reads, m.llc.misses);
    assert_eq!(m.dram.row_hits + m.dram.row_misses, m.dram.accesses());
    // Result lines streamed to DRAM as writes.
    assert_eq!(m.dram.writes, r.result_lines_written);
}

#[test]
fn pjr_stats_are_internally_consistent() {
    let c = catalog(Dataset::GrQc);
    let plan = CompiledQuery::compile(&Pattern::Path3.query()).unwrap();
    let r = TrieJax::new(TrieJaxConfig::default())
        .run(&plan, &c)
        .unwrap();
    assert!(r.pjr.hits + r.pjr.misses > 0, "path3 is cacheable");
    assert!(
        r.pjr.insertions <= r.pjr.misses,
        "at most one insertion per miss"
    );
    assert!(r.pjr.accesses >= r.pjr.hits + r.pjr.misses);
    // No cache specs -> the PJR is never touched at all.
    let plan = CompiledQuery::compile(&Pattern::Cycle3.query()).unwrap();
    let r = TrieJax::new(TrieJaxConfig::default())
        .run(&plan, &c)
        .unwrap();
    assert_eq!(r.pjr.accesses, 0);
    assert_eq!(
        r.energy.pjr, 0.0,
        "unused PJR consumes no energy (paper Fig. 15)"
    );
}

#[test]
fn component_ops_scale_with_work() {
    let c = catalog(Dataset::GrQc);
    let small = CompiledQuery::compile(&Pattern::Path3.query()).unwrap();
    let large = CompiledQuery::compile(&Pattern::Clique4.query()).unwrap();
    let accel = TrieJax::new(TrieJaxConfig::default());
    let rs = accel.run(&small, &c).unwrap();
    let rl = accel.run(&large, &c).unwrap();
    assert!(rl.ops.total() > rs.ops.total());
    assert!(
        rl.ops.lub_probes >= rl.ops.lub_seeks,
        "each seek probes at least once"
    );
    assert!(rs.ops.matchmaker > 0 && rs.ops.cupid > 0);
}
