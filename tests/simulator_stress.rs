//! Randomized stress: the simulator must match software CTJ for *any*
//! hardware configuration — thread counts, MT schemes, PJR geometries,
//! bypass settings — on random graphs. This is the strongest correctness
//! net for the interaction of dynamic spawning with the shared PJR
//! insertion buffer.

use proptest::prelude::*;
use triejax::{MtMode, TrieJax, TrieJaxConfig};
use triejax_join::{Catalog, CollectSink, Ctj, JoinEngine};
use triejax_query::{patterns::Pattern, CompiledQuery};
use triejax_relation::Relation;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn any_config_matches_software_ctj(
        edges in prop::collection::btree_set((0u32..16, 0u32..16), 1..90),
        pattern_idx in 0usize..Pattern::PAPER.len(),
        threads in 1usize..40,
        mt_idx in 0usize..3,
        pjr_bytes in prop::sample::select(vec![0u64, 256, 4096, 4 << 20]),
        pjr_banks in 1usize..5,
        entry_values in prop::sample::select(vec![1usize, 4, 256]),
        bypass in any::<bool>(),
    ) {
        let edges: Vec<(u32, u32)> = edges.into_iter().filter(|(a, b)| a != b).collect();
        prop_assume!(!edges.is_empty());
        let mut catalog = Catalog::new();
        catalog.insert("G", Relation::from_pairs(edges));
        let pattern = Pattern::PAPER[pattern_idx];
        let plan = CompiledQuery::compile(&pattern.query()).expect("compiles");

        let mut reference = CollectSink::new();
        Ctj::new().execute(&plan, &catalog, &mut reference).expect("runs");

        let mt = [MtMode::Static, MtMode::Dynamic, MtMode::Combined][mt_idx];
        let mut cfg = TrieJaxConfig::default()
            .with_threads(threads)
            .with_mt_mode(mt)
            .with_write_bypass(bypass)
            .with_pjr_bytes(pjr_bytes.max(64));
        cfg.pjr_enabled = pjr_bytes > 0;
        cfg.pjr_banks = pjr_banks;
        cfg.pjr_entry_values = entry_values;

        let mut hw = CollectSink::new();
        let report = TrieJax::new(cfg)
            .run_with_sink(&plan, &catalog, &mut hw)
            .expect("runs");
        prop_assert_eq!(report.results as usize, hw.tuples().len());
        prop_assert_eq!(hw.into_sorted(), reference.into_sorted(),
            "{} with {} threads, {:?}", pattern, threads, mt);
    }
}
