//! Standing queries: [`Session::watch`] must deliver, per applied batch,
//! **exactly** the set-difference of consecutive full evaluations — in
//! the engine's sequential order — while computing only the semi-naïve
//! delta terms. Subscribers that walk away mid-stream must unregister
//! without ever blocking an apply, and live watchers must coexist with
//! concurrent ad-hoc queries against the same session.

use std::collections::BTreeSet;

use proptest::prelude::*;
use triejax_join::{Catalog, CollectSink, JoinEngine, JoinError, Lftj, Session, WatchUpdate};
use triejax_query::{patterns::Pattern, CompiledQuery, Query};
use triejax_relation::Relation;

type Edge = (u32, u32);

fn relation_of(edges: &BTreeSet<Edge>) -> Relation {
    Relation::from_pairs(edges.iter().copied())
}

/// Full evaluation from scratch: the (expensive) reference the
/// incremental path must never be allowed to diverge from.
fn full_eval(edges: &BTreeSet<Edge>, plan: &CompiledQuery) -> Vec<Vec<u32>> {
    let mut catalog = Catalog::new();
    catalog.insert("G", relation_of(edges));
    let mut sink = CollectSink::new();
    Lftj::new()
        .execute(plan, &catalog, &mut sink)
        .expect("runs");
    sink.tuples().to_vec()
}

/// Replays `batches` against watchers on every paper pattern at once,
/// checking each update against the difference of consecutive full
/// evaluations (order-preserving, so emission order is verified too).
fn check_watch_scenario(
    base: &BTreeSet<Edge>,
    batches: &[(BTreeSet<Edge>, BTreeSet<Edge>)],
    ratio: f64,
) {
    let mut catalog = Catalog::new();
    catalog.insert("G", relation_of(base));
    let session = Session::new(catalog).with_pool(2).with_compact_ratio(ratio);

    let plans: Vec<CompiledQuery> = Pattern::PAPER
        .iter()
        .map(|p| CompiledQuery::compile(&p.query()).expect("compiles"))
        .collect();
    let watches: Vec<_> = plans
        .iter()
        .map(|plan| session.watch(plan).expect("full joins are watchable"))
        .collect();

    let mut truth = base.clone();
    let mut before: Vec<Vec<Vec<u32>>> = plans.iter().map(|p| full_eval(&truth, p)).collect();

    for (step, (inserts, deletes)) in batches.iter().enumerate() {
        let epoch = session
            .apply("G", &relation_of(inserts), &relation_of(deletes))
            .expect("apply succeeds");
        for e in deletes {
            truth.remove(e);
        }
        truth.extend(inserts.iter().copied());

        for ((plan, watch), prev) in plans.iter().zip(&watches).zip(&mut before) {
            let after = full_eval(&truth, plan);
            let prev_set: BTreeSet<&Vec<u32>> = prev.iter().collect();
            let expect: Vec<Vec<u32>> = after
                .iter()
                .filter(|r| !prev_set.contains(r))
                .cloned()
                .collect();
            let update = watch.poll().expect("one update per apply, synchronous");
            assert_eq!(update.epoch, epoch, "step {step}: epoch stamp");
            assert_eq!(
                update.rows, expect,
                "step {step} ratio={ratio}: emissions must equal the \
                 difference of consecutive full evaluations, in order"
            );
            // Nothing already present may ever be re-emitted.
            for row in &update.rows {
                assert!(
                    !prev_set.contains(row),
                    "step {step}: re-emitted existing result {row:?}"
                );
            }
            *prev = after;
        }
    }
    for watch in &watches {
        assert!(watch.poll().is_none(), "exactly one update per apply");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random graphs and batch sequences, all five paper patterns watched
    /// simultaneously: every emission equals the full-evaluation
    /// difference, in sequential order — with compaction disabled and
    /// with eager compaction racing the watchers' view of the base.
    #[test]
    fn emissions_equal_full_evaluation_differences(
        base in prop::collection::btree_set((0u32..20, 0u32..20), 1..100),
        batches in prop::collection::vec(
            (
                prop::collection::btree_set((0u32..20, 0u32..20), 0..25),
                prop::collection::btree_set((0u32..20, 0u32..20), 0..25),
            ),
            1..4,
        ),
        eager in 0u8..2,
    ) {
        let ratio = if eager == 1 { 0.0 } else { f64::INFINITY };
        check_watch_scenario(&base, &batches, ratio);
    }
}

/// The cold-start case: watching before the relation even exists, then
/// creating it through `apply`. The first batch's emissions are the full
/// first result set.
#[test]
fn watch_survives_relation_creation() {
    let session = Session::new(Catalog::new()).with_pool(1);
    let plan = CompiledQuery::compile(&Pattern::Cycle3.query()).expect("compiles");
    let watch = session.watch(&plan).expect("watchable");

    let edges: BTreeSet<Edge> = [(0, 1), (1, 2), (2, 0), (2, 3)].into_iter().collect();
    session
        .apply("G", &relation_of(&edges), &Relation::new(2).unwrap())
        .expect("apply creates G");
    let update = watch.poll().expect("delivered");
    assert_eq!(update.rows, full_eval(&edges, &plan));
}

/// Delete-only batches cannot create results: the update arrives (epoch
/// advances) but carries no rows — without any join work being provable
/// from the outside, at least the contract holds.
#[test]
fn delete_only_batches_emit_empty_updates() {
    let base: BTreeSet<Edge> = (0..8u32)
        .flat_map(|a| (0..8u32).filter(move |&b| b != a).map(move |b| (a, b)))
        .collect();
    let mut catalog = Catalog::new();
    catalog.insert("G", relation_of(&base));
    let session = Session::new(catalog).with_pool(1);
    let plan = CompiledQuery::compile(&Pattern::Cycle4.query()).expect("compiles");
    let watch = session.watch(&plan).expect("watchable");
    session
        .apply(
            "G",
            &Relation::new(2).unwrap(),
            &Relation::from_pairs(vec![(0, 1), (3, 4), (7, 2)]),
        )
        .expect("apply");
    let update = watch.poll().expect("delivered");
    assert_eq!(
        update,
        WatchUpdate {
            epoch: 1,
            rows: Vec::new()
        }
    );
}

/// Dropping a subscriber mid-sequence — with an update still undelivered
/// in its channel — must neither hang the in-flight apply nor any later
/// one; remaining watchers keep receiving.
#[test]
fn dropped_subscribers_never_block_applies() {
    let base: BTreeSet<Edge> = [(0, 1), (1, 2)].into_iter().collect();
    let mut catalog = Catalog::new();
    catalog.insert("G", relation_of(&base));
    let session = Session::new(catalog).with_pool(1);
    let plan = CompiledQuery::compile(&Pattern::Cycle3.query()).expect("compiles");

    let doomed = session.watch(&plan).expect("watchable");
    let survivor = session.watch(&plan).expect("watchable");

    // First apply: both get an update; the doomed one never polls its.
    session
        .apply(
            "G",
            &Relation::from_pairs(vec![(2, 0)]),
            &Relation::new(2).unwrap(),
        )
        .expect("apply");
    assert_eq!(survivor.poll().expect("delivered").rows.len(), 3);
    drop(doomed);

    // Later applies proceed and the survivor still hears them.
    session
        .apply(
            "G",
            &Relation::from_pairs(vec![(0, 2), (2, 1), (1, 0)]),
            &Relation::new(2).unwrap(),
        )
        .expect("apply after drop");
    let update = survivor.poll().expect("delivered");
    assert_eq!(update.epoch, 2);
    assert_eq!(update.rows.len(), 3, "the reversed triangle is new");
}

/// A long-lived ad-hoc stream started before an apply keeps its epoch's
/// answer while watchers consume the increments — the two serving paths
/// interleave against one session without disturbing each other.
#[test]
fn watchers_interleave_with_ad_hoc_queries() {
    let base: BTreeSet<Edge> = (0..10u32)
        .flat_map(|a| (0..10u32).filter(move |&b| b != a).map(move |b| (a, b)))
        .collect();
    let mut catalog = Catalog::new();
    catalog.insert("G", relation_of(&base));
    let session = Session::new(catalog).with_pool(2);
    let plan = CompiledQuery::compile(&Pattern::Path3.query()).expect("compiles");

    let watch = session.watch(&plan).expect("watchable");
    let before = full_eval(&base, &plan);

    // Start streaming at epoch 0, consume a prefix, then mutate.
    let mut stale_stream = session.query(&plan).stream();
    let prefix: Vec<Vec<u32>> = stale_stream.by_ref().take(4).collect();
    assert_eq!(prefix, before[..4]);

    let mut truth = base.clone();
    truth.extend([(0, 10), (10, 3)]);
    session
        .apply(
            "G",
            &Relation::from_pairs(vec![(0, 10), (10, 3)]),
            &Relation::new(2).unwrap(),
        )
        .expect("apply");

    // The watcher sees exactly the increment …
    let after = full_eval(&truth, &plan);
    let prev: BTreeSet<&Vec<u32>> = before.iter().collect();
    let expect: Vec<Vec<u32>> = after
        .iter()
        .filter(|r| !prev.contains(r))
        .cloned()
        .collect();
    assert!(!expect.is_empty());
    assert_eq!(watch.poll().expect("delivered").rows, expect);

    // … while the pre-apply stream finishes with its epoch-0 answer …
    let rest: Vec<Vec<u32>> = stale_stream.collect();
    assert_eq!(rest, before[4..]);

    // … and a fresh ad-hoc query serves the new epoch.
    let fresh: Vec<Vec<u32>> = session.query(&plan).stream().collect();
    assert_eq!(fresh, after);
}

/// Projected queries cannot be watched (the engines emit full joins);
/// the error is a planning error, not a panic at apply time.
#[test]
fn projected_plans_are_rejected_at_watch_time() {
    let mut catalog = Catalog::new();
    catalog.insert("G", Relation::from_pairs(vec![(0, 1)]));
    let session = Session::new(catalog).with_pool(1);
    let q = Query::builder("heads")
        .head(["x"])
        .atom("G", ["x", "y"])
        .build_projected()
        .expect("valid projection");
    let plan = CompiledQuery::compile(&q).expect("compiles");
    assert!(matches!(session.watch(&plan), Err(JoinError::Plan { .. })));
}
