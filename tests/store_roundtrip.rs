//! Persistence round-trip properties: a catalog saved through
//! `triejax-store` and re-opened cold must hold **byte-identical** tries
//! and answer every query **tuple-for-tuple identically** — across pool
//! sizes 1/2/7, with dynamic splitting on and off, on both parallel
//! engines — and the paper's Cycle3/Cycle4 queries must run with *zero*
//! trie-build work after a store preload (the acceptance signal that a
//! cold process serves in O(bytes-read)).

use proptest::prelude::*;
use std::sync::Arc;
use triejax_join::{
    Catalog, CollectSink, Counting, JoinEngine, Lftj, ParCtj, ParLftj, Session, StoredCatalog,
    TrieCache,
};
use triejax_query::{patterns, CompiledQuery, Query};
use triejax_relation::{Relation, Trie};

const POOL_SIZES: [usize; 3] = [1, 2, 7];

fn catalog_from(edges: Vec<(u32, u32)>) -> Catalog {
    let mut c = Catalog::new();
    c.insert("G", Relation::from_pairs(edges));
    c
}

fn sequential(plan: &CompiledQuery, catalog: &Catalog) -> Vec<Vec<u32>> {
    let mut sink = CollectSink::new();
    Lftj::new().execute(plan, catalog, &mut sink).expect("runs");
    sink.tuples().to_vec()
}

/// Snapshot the catalog + the tries every plan needs, push it through the
/// byte format, and reopen — the cold-process path, minus the filesystem.
fn save_open(session: &Session, plans: &[CompiledQuery]) -> Session {
    let stored = session.snapshot(plans).expect("snapshot");
    let bytes = stored.to_bytes();
    let reopened = StoredCatalog::from_bytes(&bytes).expect("reopen");
    Session::from_stored(&reopened)
}

/// Every stored trie must survive the byte format bit-for-bit: same flat
/// word buffer, same offset table, same tuples.
fn assert_tries_byte_identical(stored: &StoredCatalog) {
    let bytes = stored.to_bytes();
    let reopened = StoredCatalog::from_bytes(&bytes).expect("valid bytes");
    assert_eq!(reopened.tries().len(), stored.tries().len());
    for (a, b) in reopened.tries().iter().zip(stored.tries()) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.perm, b.perm);
        assert_eq!(a.trie.words(), b.trie.words(), "flat buffers must match");
        assert_eq!(a.trie.level_dims(), b.trie.level_dims());
        assert_eq!(*a.trie, *b.trie);
    }
}

/// Runs `plan` on a store-preloaded cache across every pool size, split
/// mode, and both engines; each run must be tuple-identical to sequential
/// LFTJ and do zero trie-build work.
fn check_store_served_runs(plan: &CompiledQuery, catalog: &Catalog, stored: &StoredCatalog) {
    let reference = sequential(plan, catalog);
    for pool in POOL_SIZES {
        for split in [false, true] {
            for ctj in [false, true] {
                // A fresh preloaded cache per run: every trie must come
                // from the store, none from a previous run's build.
                let cache = Arc::new(TrieCache::unbounded());
                cache.preload(stored);
                let mut sink = CollectSink::new();
                let stats = if ctj {
                    ParCtj::with_pool(pool)
                        .with_split(split)
                        .with_trie_cache(Arc::clone(&cache))
                        .run_tallied::<Counting>(plan, catalog, &mut sink)
                        .expect("runs")
                } else {
                    ParLftj::with_pool(pool)
                        .with_split(split)
                        .with_trie_cache(Arc::clone(&cache))
                        .run_tallied::<Counting>(plan, catalog, &mut sink)
                        .expect("runs")
                };
                let label = format!("pool={pool} split={split} ctj={ctj}");
                assert_eq!(sink.tuples(), reference, "{label}: tuples");
                assert_eq!(
                    stats.trie_build_ns, 0,
                    "{label}: store-served run must do zero build work"
                );
                assert!(stats.trie_cache_hits > 0, "{label}: no store hits");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random graphs: snapshot → bytes → reopen preserves every trie
    /// bit-for-bit and every query result tuple-for-tuple, for every pool
    /// size, split mode, and engine.
    #[test]
    fn save_open_is_lossless_on_random_graphs(
        edges in prop::collection::btree_set((0u32..20, 0u32..20), 1..120),
        pattern_idx in 0usize..patterns::Pattern::PAPER.len(),
    ) {
        let edges: Vec<(u32, u32)> = edges.into_iter().filter(|(a, b)| a != b).collect();
        prop_assume!(!edges.is_empty());
        let catalog = catalog_from(edges);
        let plan = CompiledQuery::compile(
            &patterns::Pattern::PAPER[pattern_idx].query(),
        ).expect("compiles");

        let session = Session::new(catalog.clone()).with_pool(2);
        let stored = session.snapshot(std::slice::from_ref(&plan)).expect("snapshot");
        assert_tries_byte_identical(&stored);
        check_store_served_runs(&plan, &catalog, &stored);
    }
}

/// The acceptance scenario: a saved catalog re-opened "in a fresh
/// process" (fresh session, fresh cache, nothing but the stored bytes)
/// answers the paper's Cycle3 and Cycle4 queries with zero
/// `Trie::build`/`par_build` work and identical tuples.
#[test]
fn cycle3_cycle4_serve_with_zero_builds_after_reopen() {
    let catalog = catalog_from(
        (0..24u32)
            .flat_map(|i| [(i, (i + 1) % 24), (i, (i + 3) % 24), ((i + 5) % 24, i)])
            .collect(),
    );
    let plans: Vec<CompiledQuery> = [patterns::cycle3(), patterns::cycle4()]
        .iter()
        .map(|q: &Query| CompiledQuery::compile(q).expect("compiles"))
        .collect();

    let producer = Session::new(catalog.clone()).with_pool(4);
    let reopened = save_open(&producer, &plans).with_pool(4);

    for plan in &plans {
        let expect = sequential(plan, &catalog);
        let mut sink = CollectSink::new();
        let stats = reopened.query(plan).run(&mut sink).expect("serves");
        assert_eq!(sink.tuples(), expect, "reopened results must be identical");
        assert_eq!(
            stats.trie_build_ns, 0,
            "a reopened catalog must answer with zero trie builds"
        );
        assert!(stats.trie_cache_hits > 0, "tries must come from the store");
    }
    // Only lookups hit the session cache: zero insertions after reopening
    // beyond the preload, i.e. no query built anything behind our back.
    let preloaded = reopened.trie_cache().insertions();
    assert_eq!(
        preloaded,
        producer.trie_cache().insertions(),
        "reopened cache holds exactly the stored tries"
    );
}

/// Stale-by-fingerprint: after the base data changes, a preloaded store
/// never serves the old tries — queries rebuild and stay correct.
#[test]
fn changed_data_makes_stored_tries_unreachable() {
    let old = catalog_from((0..12u32).map(|i| (i, (i + 1) % 12)).collect());
    let plan = CompiledQuery::compile(&patterns::cycle3()).expect("compiles");
    let producer = Session::new(old).with_pool(2);
    let stored = producer
        .snapshot(std::slice::from_ref(&plan))
        .expect("snapshot");

    // Same relation name, different content.
    let new_catalog = catalog_from(
        (0..12u32)
            .flat_map(|i| [(i, (i + 1) % 12), (i, (i + 4) % 12)])
            .collect(),
    );
    let cache = Arc::new(TrieCache::unbounded());
    cache.preload(&stored);
    let mut sink = CollectSink::new();
    let stats = ParLftj::with_pool(2)
        .with_trie_cache(Arc::clone(&cache))
        .run_tallied::<Counting>(&plan, &new_catalog, &mut sink)
        .expect("runs");
    assert_eq!(stats.trie_cache_hits, 0, "stale tries must be unreachable");
    assert!(stats.trie_build_ns > 0, "the query rebuilt fresh tries");
    assert_eq!(sink.tuples(), sequential(&plan, &new_catalog));
}

/// A store file on disk round-trips through `save`/`open` exactly like
/// the in-memory byte path, and a flipped bit is caught by the checksum.
#[test]
fn on_disk_round_trip_and_corruption_detection() {
    let catalog = catalog_from((0..10u32).map(|i| (i, (i + 1) % 10)).collect());
    let plan = CompiledQuery::compile(&patterns::cycle3()).expect("compiles");
    let session = Session::new(catalog).with_pool(2);
    let stored = session
        .snapshot(std::slice::from_ref(&plan))
        .expect("snapshot");

    let path = std::env::temp_dir().join(format!("triejax_roundtrip_{}.tjx", std::process::id()));
    stored.save(&path).expect("save");
    let reopened = StoredCatalog::open(&path).expect("open");
    assert_eq!(reopened.to_bytes(), stored.to_bytes());

    // Flip one payload bit on disk: open must fail loudly, not serve junk.
    let mut bytes = std::fs::read(&path).expect("read");
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    std::fs::write(&path, &bytes).expect("write");
    assert!(
        StoredCatalog::open(&path).is_err(),
        "corruption must be caught"
    );
    std::fs::remove_file(&path).ok();
}

/// Tries built by different pool sizes snapshot to identical bytes — the
/// store inherits `par_build`'s byte-identical guarantee, so baselines
/// produced anywhere gate anywhere.
#[test]
fn snapshots_are_identical_across_pool_sizes() {
    let catalog = catalog_from(
        (0..30u32)
            .flat_map(|i| [(i % 7, i % 11), (i % 11, i % 5)])
            .filter(|(a, b)| a != b)
            .collect(),
    );
    let plan = CompiledQuery::compile(&patterns::clique4()).expect("compiles");
    let mut reference: Option<Vec<u8>> = None;
    for pool in POOL_SIZES {
        let session = Session::new(catalog.clone()).with_pool(pool);
        let bytes = session
            .snapshot(std::slice::from_ref(&plan))
            .expect("snapshot")
            .to_bytes();
        match &reference {
            None => reference = Some(bytes),
            Some(r) => assert_eq!(&bytes, r, "pool={pool} produced different bytes"),
        }
    }
}

/// Byte-identity also holds for tries reconstructed through
/// `Trie::from_parts` directly (the layer the store is built on).
#[test]
fn trie_from_parts_round_trips_paper_shapes() {
    for q in [patterns::cycle3(), patterns::cycle4(), patterns::clique4()] {
        let plan = CompiledQuery::compile(&q).expect("compiles");
        let catalog = catalog_from(
            (0..16u32)
                .flat_map(|i| [(i, (i + 1) % 16), (i, (i + 6) % 16)])
                .collect(),
        );
        for ap in plan.atom_plans() {
            let rel = catalog
                .get(ap.relation())
                .expect("exists")
                .permute(ap.perm());
            let trie = Trie::build(&rel);
            let rebuilt = Trie::from_parts(
                trie.words().to_vec(),
                &trie.level_dims(),
                trie.tuple_count(),
            )
            .expect("valid parts");
            assert_eq!(rebuilt, trie);
        }
    }
}
