//! Streaming-session properties: a [`ResultStream`] must deliver the
//! **exact sequential tuple order** incrementally (equal to a
//! `CollectSink` run of the same plan), truncate to an exact prefix under
//! a row limit, and cancel cooperatively — never hang — when dropped
//! mid-stream. Checked on random graphs across pool sizes and engines.

use proptest::prelude::*;
use triejax_join::Catalog;
use triejax_join::{CollectSink, JoinEngine, Lftj, Session};
use triejax_query::{patterns::Pattern, CompiledQuery};
use triejax_relation::Relation;

const POOL_SIZES: [usize; 3] = [1, 2, 7];

fn catalog_from(edges: Vec<(u32, u32)>) -> Catalog {
    let mut c = Catalog::new();
    c.insert("G", Relation::from_pairs(edges));
    c
}

fn sequential(plan: &CompiledQuery, catalog: &Catalog) -> Vec<Vec<u32>> {
    let mut sink = CollectSink::new();
    Lftj::new().execute(plan, catalog, &mut sink).expect("runs");
    sink.tuples().to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// On any random graph and paper pattern, the pull-based stream
    /// yields exactly the sequential tuple sequence, for every pool size
    /// and on both parallel engines.
    #[test]
    fn streams_equal_sequential_order(
        edges in prop::collection::btree_set((0u32..22, 0u32..22), 1..130),
        pattern_idx in 0usize..Pattern::PAPER.len(),
    ) {
        let edges: Vec<(u32, u32)> = edges.into_iter().filter(|(a, b)| a != b).collect();
        prop_assume!(!edges.is_empty());
        let catalog = catalog_from(edges);
        let plan = CompiledQuery::compile(&Pattern::PAPER[pattern_idx].query())
            .expect("compiles");
        let reference = sequential(&plan, &catalog);

        for pool in POOL_SIZES {
            let session = Session::new(catalog.clone()).with_pool(pool);
            for ctj in [false, true] {
                let mut handle = session.query(&plan);
                if ctj {
                    handle = handle.with_ctj();
                }
                let mut stream = handle.stream();
                let got: Vec<Vec<u32>> = stream.by_ref().collect();
                prop_assert_eq!(&got, &reference, "pool={} ctj={}", pool, ctj);
                let stats = stream
                    .outcome()
                    .expect("exhausted stream has an outcome")
                    .as_ref()
                    .expect("clean run");
                prop_assert_eq!(stats.results, reference.len() as u64);
            }
        }
    }

    /// A row limit yields exactly the first `limit` tuples of the
    /// sequential order — a true prefix, never a different subset.
    #[test]
    fn row_limits_stream_exact_prefixes(
        edges in prop::collection::btree_set((0u32..18, 0u32..18), 1..110),
        limit in 1u64..40,
    ) {
        let edges: Vec<(u32, u32)> = edges.into_iter().filter(|(a, b)| a != b).collect();
        prop_assume!(!edges.is_empty());
        let catalog = catalog_from(edges);
        let plan = CompiledQuery::compile(&triejax_query::patterns::cycle3())
            .expect("compiles");
        let reference = sequential(&plan, &catalog);

        let session = Session::new(catalog).with_pool(2);
        let stream = session.query(&plan).with_row_limit(limit).stream();
        let got: Vec<Vec<u32>> = stream.collect();
        let want = &reference[..reference.len().min(limit as usize)];
        prop_assert_eq!(got.as_slice(), want);
    }

    /// Dropping a stream after a partial read cancels the run without
    /// hanging, and the tuples read before the drop are still the exact
    /// sequential prefix.
    #[test]
    fn early_drop_keeps_the_prefix_and_never_hangs(
        edges in prop::collection::btree_set((0u32..22, 0u32..22), 40..130),
        take in 0usize..25,
    ) {
        let edges: Vec<(u32, u32)> = edges.into_iter().filter(|(a, b)| a != b).collect();
        prop_assume!(!edges.is_empty());
        let catalog = catalog_from(edges);
        let plan = CompiledQuery::compile(&triejax_query::patterns::path4())
            .expect("compiles");
        let reference = sequential(&plan, &catalog);

        let session = Session::new(catalog).with_pool(4);
        let mut stream = session.query(&plan).stream();
        let mut got = Vec::new();
        for _ in 0..take {
            match stream.next() {
                Some(row) => got.push(row),
                None => break,
            }
        }
        drop(stream); // must cancel cooperatively, not deadlock
        let want = &reference[..got.len()];
        prop_assert_eq!(got.as_slice(), want, "prefix before drop");
    }
}

/// Interleaved concurrent streams on one shared session stay independent:
/// each delivers its own plan's exact sequential order.
#[test]
fn interleaved_streams_on_one_session_stay_independent() {
    let catalog = catalog_from(
        (0..12u32)
            .flat_map(|a| (0..12u32).filter(move |&b| b != a).map(move |b| (a, b)))
            .collect(),
    );
    let cycle = CompiledQuery::compile(&triejax_query::patterns::cycle3()).expect("compiles");
    let path = CompiledQuery::compile(&triejax_query::patterns::path3()).expect("compiles");
    let want_cycle = sequential(&cycle, &catalog);
    let want_path = sequential(&path, &catalog);

    let session = Session::new(catalog).with_pool(4);
    let mut a = session.query(&cycle).stream();
    let mut b = session.query(&path).stream();
    let mut got_a = Vec::new();
    let mut got_b = Vec::new();
    // Pull alternately so both producers are live at once.
    loop {
        let ra = a.next();
        let rb = b.next();
        if let Some(r) = ra {
            got_a.push(r);
        }
        if let Some(r) = rb {
            got_b.push(r);
        }
        if got_a.len() == want_cycle.len() && got_b.len() == want_path.len() {
            break;
        }
    }
    assert_eq!(got_a, want_cycle);
    assert_eq!(got_b, want_path);
    assert!(a.next().is_none() && b.next().is_none());
}

/// Streams served from a reopened store behave identically to streams on
/// a fresh session — and do zero trie-build work.
#[test]
fn store_served_streams_match_and_skip_builds() {
    let catalog = catalog_from(
        (0..20u32)
            .flat_map(|i| [(i, (i + 1) % 20), (i, (i + 4) % 20), ((i + 9) % 20, i)])
            .collect(),
    );
    let plan = CompiledQuery::compile(&triejax_query::patterns::cycle4()).expect("compiles");
    let reference = sequential(&plan, &catalog);

    let producer = Session::new(catalog).with_pool(4);
    let stored = producer
        .snapshot(std::slice::from_ref(&plan))
        .expect("snapshot");
    let bytes = stored.to_bytes();
    let reopened = triejax_join::StoredCatalog::from_bytes(&bytes).expect("reopen");
    let session = Session::from_stored(&reopened).with_pool(4);

    let mut stream = session.query(&plan).stream();
    let got: Vec<Vec<u32>> = stream.by_ref().collect();
    assert_eq!(got, reference);
    let stats = stream
        .outcome()
        .expect("outcome after exhaustion")
        .as_ref()
        .expect("clean run");
    assert_eq!(stats.trie_build_ns, 0, "store-served stream built nothing");
    assert!(stats.trie_cache_hits > 0);
}
