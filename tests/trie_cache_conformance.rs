//! Conformance suite for the **cross-query trie cache** shared by
//! `ParLftj` and `ParCtj`.
//!
//! The trie cache changes *when tries are built* but must never change
//! *what a query produces*: a warm run (every trie served from the
//! cache) has to stay tuple-for-tuple identical — same tuples, same
//! order — to the cold run that filled it, and to the sequential
//! engines that never cache at all. On top of conformance the suite
//! locks in the properties that make the cache safe to share:
//!
//! * **effectiveness** — the warm run actually hits (`trie_cache_hits`
//!   covers every distinct `(relation, perm)` build of the plan);
//! * **freshness** — replacing a relation under the same catalog name
//!   changes its content fingerprint, so the stale trie is unreachable
//!   and the new data is joined, not the cached old one;
//! * **zero capacity** — a 0-byte cache admits nothing, hits stay at
//!   zero forever, and results remain exact.

use std::sync::Arc;

use triejax_join::{Catalog, CollectSink, JoinEngine, Lftj, ParCtj, ParLftj, TrieCache};
use triejax_query::{patterns::Pattern, CompiledQuery};
use triejax_relation::Relation;

const POOLS: [usize; 3] = [1, 2, 7];

fn catalog_from(edges: Vec<(u32, u32)>) -> Catalog {
    let mut c = Catalog::new();
    c.insert("G", Relation::from_pairs(edges));
    c
}

/// Hub-heavy graph: enough root keys for multi-partition parallel
/// builds, enough results for order mistakes to show.
fn hub_edges() -> Vec<(u32, u32)> {
    let mut edges = Vec::new();
    for i in 1..160u32 {
        edges.push((0, i));
        edges.push((i, 0));
        edges.push((i, (i * 7) % 160));
    }
    edges
}

fn reference_tuples(plan: &CompiledQuery, catalog: &Catalog) -> Vec<Vec<u32>> {
    let mut sink = CollectSink::new();
    Lftj::new().execute(plan, catalog, &mut sink).expect("runs");
    sink.tuples().to_vec()
}

/// A cold run fills the cache, a warm run serves every build from it,
/// and both are tuple-for-tuple identical to the sequential reference —
/// for both parallel engines, across pool sizes.
#[test]
fn warm_runs_are_identical_to_cold_and_actually_hit() {
    let catalog = catalog_from(hub_edges());
    for pattern in [Pattern::Cycle3, Pattern::Path3] {
        let plan = CompiledQuery::compile(&pattern.query()).expect("compiles");
        let reference = reference_tuples(&plan, &catalog);
        let distinct_builds = {
            // Count distinct (relation, perm) pairs the plan needs.
            let mut keys: Vec<_> = plan
                .atom_plans()
                .iter()
                .map(|ap| (ap.relation().to_string(), ap.perm().to_vec()))
                .collect();
            keys.sort();
            keys.dedup();
            keys.len() as u64
        };

        for pool in POOLS {
            let cache = Arc::new(TrieCache::unbounded());

            let mut cold = CollectSink::new();
            let cold_stats = ParLftj::with_pool(pool)
                .with_trie_cache(cache.clone())
                .execute(&plan, &catalog, &mut cold)
                .expect("cold run");
            assert_eq!(cold.tuples(), reference, "{pattern}/pool {pool}: cold");
            assert_eq!(cold_stats.trie_cache_hits, 0, "{pattern}/pool {pool}");
            assert_eq!(cache.insertions(), distinct_builds, "{pattern}/pool {pool}");

            let mut warm = CollectSink::new();
            let warm_stats = ParLftj::with_pool(pool)
                .with_trie_cache(cache.clone())
                .execute(&plan, &catalog, &mut warm)
                .expect("warm run");
            assert_eq!(warm.tuples(), reference, "{pattern}/pool {pool}: warm");
            assert_eq!(
                warm_stats.trie_cache_hits, distinct_builds,
                "{pattern}/pool {pool}: every build must be served"
            );
            assert!(warm_stats.trie_build_ns <= cold_stats.trie_build_ns * 100);

            // The *other* engine shares the same cache: its builds are
            // the same keys, so it starts warm.
            let mut ctj = CollectSink::new();
            let ctj_stats = ParCtj::with_pool(pool)
                .with_trie_cache(cache.clone())
                .execute(&plan, &catalog, &mut ctj)
                .expect("parctj warm run");
            assert_eq!(ctj.tuples(), reference, "{pattern}/pool {pool}: parctj");
            assert_eq!(ctj_stats.trie_cache_hits, distinct_builds);
        }
    }
}

/// Replacing a relation under the same catalog name must not serve the
/// stale trie: the fingerprint key makes the old entry unreachable.
#[test]
fn changed_relation_is_rebuilt_not_served_stale() {
    let plan = CompiledQuery::compile(&Pattern::Path3.query()).expect("compiles");
    let cache = Arc::new(TrieCache::unbounded());

    let old = catalog_from(vec![(1, 2), (2, 3)]);
    let mut cold = CollectSink::new();
    ParLftj::with_pool(2)
        .with_trie_cache(cache.clone())
        .execute(&plan, &old, &mut cold)
        .expect("cold run");

    // Same name "G", different content: a stale hit would join old edges.
    let new = catalog_from(vec![(10, 20), (20, 30), (30, 40)]);
    let reference = reference_tuples(&plan, &new);
    let mut fresh = CollectSink::new();
    let stats = ParLftj::with_pool(2)
        .with_trie_cache(cache.clone())
        .execute(&plan, &new, &mut fresh)
        .expect("fresh run");
    assert_eq!(fresh.tuples(), reference, "must join the new data");
    assert_eq!(stats.trie_cache_hits, 0, "no stale fingerprint may hit");
    assert!(
        cache.len() > 1,
        "old and new entries coexist under one name"
    );
}

/// A zero-capacity cache admits nothing: every run rebuilds, hits stay
/// at zero, and the results are still exact.
#[test]
fn zero_capacity_cache_never_hits_and_stays_exact() {
    let catalog = catalog_from(hub_edges());
    let plan = CompiledQuery::compile(&Pattern::Cycle3.query()).expect("compiles");
    let reference = reference_tuples(&plan, &catalog);
    let cache = Arc::new(TrieCache::with_capacity_mb(0));

    for round in 0..3 {
        let mut sink = CollectSink::new();
        let stats = ParCtj::with_pool(2)
            .with_trie_cache(cache.clone())
            .execute(&plan, &catalog, &mut sink)
            .expect("runs");
        assert_eq!(sink.tuples(), reference, "round {round}");
        assert_eq!(stats.trie_cache_hits, 0, "round {round}");
    }
    assert_eq!(cache.len(), 0, "nothing may be admitted");
    assert!(cache.overflows() > 0, "the overflow path must have run");
}

/// `without_trie_cache` severs an engine from a process default: the
/// explicit opt-out never reads, never writes.
#[test]
fn opted_out_engine_leaves_the_cache_untouched() {
    let catalog = catalog_from(vec![(1, 2), (2, 3), (3, 1)]);
    let plan = CompiledQuery::compile(&Pattern::Cycle3.query()).expect("compiles");
    let reference = reference_tuples(&plan, &catalog);

    let mut sink = CollectSink::new();
    let stats = ParLftj::with_pool(2)
        .without_trie_cache()
        .execute(&plan, &catalog, &mut sink)
        .expect("runs");
    assert_eq!(sink.tuples(), reference);
    assert_eq!(stats.trie_cache_hits, 0);
}
