//! Worst-case-optimality theory checks (paper §2.1): result counts never
//! exceed the AGM bound, and the WCOJ engines' working behaviour respects
//! it while the pairwise plan can blow through it.

use triejax_graph::{Dataset, Scale};
use triejax_join::{Catalog, CountSink, Ctj, JoinEngine, PairwiseHash};
use triejax_query::{agm, patterns::Pattern, CompiledQuery};

#[test]
fn result_counts_respect_the_agm_bound() {
    for d in [Dataset::GrQc, Dataset::WikiVote, Dataset::Facebook] {
        let g = d.generate(Scale::Tiny);
        let n = g.num_edges() as u64;
        let mut catalog = Catalog::new();
        catalog.insert("G", g.edge_relation());
        for p in Pattern::ALL {
            let q = p.query();
            let bound = agm::agm_bound(&q, n).expect("binary atoms");
            let plan = CompiledQuery::compile(&q).expect("compiles");
            let mut sink = CountSink::default();
            Ctj::new()
                .execute(&plan, &catalog, &mut sink)
                .expect("runs");
            assert!(
                (sink.count() as f64) <= bound,
                "{p} on {d}: {} results exceed AGM bound {bound}",
                sink.count()
            );
        }
    }
}

#[test]
fn triangle_bound_matches_the_paper_example() {
    // Paper §2.1: "the query result Q(x,y,z) contains no more than N^(3/2)
    // results" — and the bound is reached by a union of small cliques,
    // not by any random graph.
    let q = Pattern::Cycle3.query();
    assert_eq!(agm::fractional_edge_cover(&q).unwrap(), 1.5);
    // A complete directed graph on k vertices has N = k(k-1) edges and
    // k(k-1)(k-2) ordered triangles, approaching the bound's exponent.
    let k = 8u32;
    let mut edges = Vec::new();
    for a in 0..k {
        for b in 0..k {
            if a != b {
                edges.push((a, b));
            }
        }
    }
    let n = edges.len() as u64;
    let mut catalog = Catalog::new();
    catalog.insert("G", triejax_relation::Relation::from_pairs(edges));
    let plan = CompiledQuery::compile(&q).unwrap();
    let mut sink = CountSink::default();
    Ctj::new().execute(&plan, &catalog, &mut sink).unwrap();
    let bound = agm::agm_bound(&q, n).unwrap();
    assert!(sink.count() as f64 <= bound);
    // The dense instance is within a small constant of the bound.
    assert!(
        sink.count() as f64 > bound / 8.0,
        "{} vs bound {bound}",
        sink.count()
    );
}

#[test]
fn pairwise_intermediates_can_exceed_the_output_bound() {
    // The AGM argument: pairwise plans materialize up to N^2 intermediates
    // on the triangle query even when the output is tiny. A bipartite-ish
    // graph with no triangles makes the gap stark.
    let mut edges = Vec::new();
    for a in 0..30u32 {
        for b in 30..60u32 {
            if (a + b) % 3 != 0 {
                edges.push((a, b));
                edges.push((b, a));
            }
        }
    }
    let mut catalog = Catalog::new();
    catalog.insert("G", triejax_relation::Relation::from_pairs(edges));
    let plan = CompiledQuery::compile(&Pattern::Cycle3.query()).unwrap();
    let mut s1 = CountSink::default();
    let pw = PairwiseHash::new()
        .execute(&plan, &catalog, &mut s1)
        .unwrap();
    let mut s2 = CountSink::default();
    let ctj = Ctj::new().execute(&plan, &catalog, &mut s2).unwrap();
    assert_eq!(s1.count(), 0, "bipartite: no triangles");
    assert!(
        pw.intermediates > 10_000,
        "pairwise still materialized a lot"
    );
    assert_eq!(
        ctj.intermediates, 0,
        "cycle3 admits no cache, CTJ stores nothing"
    );
}
